//===- Program.h - IR program container -------------------------*- C++ -*-===//
//
// Part of the Cut-Shortcut pointer analysis reproduction.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Program owns every IR entity: the type table (classes, interfaces,
/// arrays), fields, methods, variables, statements, allocation sites and
/// call sites. It also answers the hierarchy queries the analysis needs:
/// subtyping, virtual dispatch, and field resolution.
///
//===----------------------------------------------------------------------===//

#ifndef CSC_IR_PROGRAM_H
#define CSC_IR_PROGRAM_H

#include "ir/Stmt.h"
#include "support/Hash.h"
#include "support/Ids.h"
#include "support/Interner.h"

#include <string>
#include <unordered_map>
#include <vector>

namespace csc {

enum class TypeKind : uint8_t { Class, Interface, Array };

/// A class, interface, or array type.
struct TypeInfo {
  std::string Name;
  TypeKind Kind = TypeKind::Class;
  TypeId Super = InvalidId;          ///< Superclass (InvalidId for Object).
  std::vector<TypeId> Interfaces;    ///< Directly implemented interfaces.
  TypeId ArrayElem = InvalidId;      ///< Element type for arrays.
  bool IsAbstract = false;
  bool Defined = false;              ///< False for forward references.
  std::vector<FieldId> Fields;       ///< Declared fields.
  std::vector<MethodId> Methods;     ///< Declared methods.
};

/// An instance or static field declaration.
struct FieldInfo {
  std::string Name;
  TypeId Owner = InvalidId;
  TypeId DeclaredType = InvalidId;
  bool IsStatic = false;
};

/// A local variable (parameters included).
struct VarInfo {
  std::string Name;
  MethodId Method = InvalidId;
  TypeId DeclaredType = InvalidId;
  std::vector<StmtId> Defs; ///< Statements assigning this variable.
};

/// A method. Parameters of instance methods include `this` at index 0.
struct MethodInfo {
  std::string Name;
  TypeId Owner = InvalidId;
  bool IsStatic = false;
  bool IsAbstract = false;
  TypeId RetType = InvalidId; ///< InvalidId means void.
  std::vector<TypeId> ParamTypes; ///< Declared types, excluding `this`.
  std::vector<VarId> Params;      ///< `this` first for instance methods.
  std::vector<VarId> Vars;        ///< All locals, parameters included.
  std::vector<VarId> RetVars;     ///< Variables returned by Return stmts.
  std::vector<StmtId> Body;       ///< Top-level statements, in order.
  std::vector<StmtId> AllStmts;   ///< Every statement, nesting flattened.
  uint32_t Subsig = InvalidId;    ///< Interned "name/arity" dispatch key.
};

/// An abstract heap object (one per allocation site).
struct ObjInfo {
  TypeId Type = InvalidId;
  StmtId AllocStmt = InvalidId;
  MethodId Method = InvalidId;
  bool IsArray = false;
};

/// A call site (one per Invoke statement).
struct CallSiteInfo {
  StmtId S = InvalidId;
  MethodId Caller = InvalidId;
};

/// The whole-program IR container.
class Program {
public:
  Program();

  //===--------------------------------------------------------------------===
  // Types
  //===--------------------------------------------------------------------===

  /// The root class type "Object" (created by the constructor).
  TypeId objectType() const { return ObjectTy; }

  /// Returns the type named \p Name, creating an undefined forward
  /// reference if it does not exist yet.
  TypeId getOrCreateType(const std::string &Name);

  /// Defines a class/interface. \p Super may be InvalidId (defaults to
  /// Object for classes). Returns the type id; reuses a forward reference.
  TypeId defineClass(const std::string &Name, TypeId Super,
                     std::vector<TypeId> Interfaces = {},
                     TypeKind Kind = TypeKind::Class, bool IsAbstract = false);

  /// Returns (creating on demand) the array type with element \p Elem.
  TypeId arrayOf(TypeId Elem);

  /// Returns the type named \p Name or InvalidId.
  TypeId typeByName(const std::string &Name) const;

  /// True if \p Sub is \p Sup or a subtype of it (classes, interfaces,
  /// covariant arrays; every type is a subtype of Object).
  bool isSubtype(TypeId Sub, TypeId Sup) const;

  //===--------------------------------------------------------------------===
  // Fields
  //===--------------------------------------------------------------------===

  FieldId addField(TypeId Owner, const std::string &Name, TypeId DeclaredType,
                   bool IsStatic = false);

  /// Finds the field named \p Name on \p T or its superclasses;
  /// InvalidId if absent.
  FieldId resolveField(TypeId T, const std::string &Name) const;

  //===--------------------------------------------------------------------===
  // Methods & dispatch
  //===--------------------------------------------------------------------===

  /// Creates an (initially empty) method; bodies are added via IRBuilder.
  MethodId addMethod(TypeId Owner, const std::string &Name,
                     std::vector<TypeId> ParamTypes, TypeId RetType,
                     bool IsStatic = false, bool IsAbstract = false);

  /// Interns the dispatch key "name/arity" (arity excludes `this`).
  uint32_t subsig(const std::string &Name, size_t Arity);

  /// Resolves a virtual call on receiver type \p T: walks the class chain
  /// for a concrete method with the given subsignature. Memoized.
  MethodId dispatch(TypeId T, uint32_t Subsig) const;

  /// Finds a method by name and arity starting at \p T (used for direct
  /// calls and the frontend); may return an abstract method.
  MethodId lookupMethod(TypeId T, const std::string &Name,
                        size_t Arity) const;

  //===--------------------------------------------------------------------===
  // Variables, statements, allocation sites, call sites
  //===--------------------------------------------------------------------===

  VarId addVar(MethodId M, const std::string &Name, TypeId DeclaredType);
  StmtId addStmt(Stmt S); ///< Appends; records var defs and ret vars.
  ObjId addObj(TypeId Type, StmtId Alloc, MethodId M, bool IsArray);
  CallSiteId addCallSite(StmtId S, MethodId Caller);

  //===--------------------------------------------------------------------===
  // Accessors
  //===--------------------------------------------------------------------===

  const TypeInfo &type(TypeId T) const { return Types[T]; }
  TypeInfo &typeMut(TypeId T) { return Types[T]; }
  const FieldInfo &field(FieldId F) const { return Fields[F]; }
  const MethodInfo &method(MethodId M) const { return Methods[M]; }
  MethodInfo &methodMut(MethodId M) { return Methods[M]; }
  const VarInfo &var(VarId V) const { return Vars[V]; }
  VarInfo &varMut(VarId V) { return Vars[V]; }
  const Stmt &stmt(StmtId S) const { return Stmts[S]; }
  Stmt &stmtMut(StmtId S) { return Stmts[S]; }
  const ObjInfo &obj(ObjId O) const { return Objs[O]; }
  const CallSiteInfo &callSite(CallSiteId C) const { return CallSites[C]; }
  const std::string &subsigName(uint32_t S) const { return Subsigs.get(S); }

  uint32_t numTypes() const { return static_cast<uint32_t>(Types.size()); }
  uint32_t numFields() const { return static_cast<uint32_t>(Fields.size()); }
  uint32_t numMethods() const { return static_cast<uint32_t>(Methods.size()); }
  uint32_t numVars() const { return static_cast<uint32_t>(Vars.size()); }
  uint32_t numStmts() const { return static_cast<uint32_t>(Stmts.size()); }
  uint32_t numObjs() const { return static_cast<uint32_t>(Objs.size()); }
  uint32_t numCallSites() const {
    return static_cast<uint32_t>(CallSites.size());
  }

  /// Entry point (a static, parameterless method).
  MethodId entry() const { return Entry; }
  void setEntry(MethodId M) { Entry = M; }

  /// True if the argument variable of `Stmt.Args[K]`-style accesses exists;
  /// helper: the k-th "call argument" with receiver folded in at index 0.
  /// For a virtual/special call, arg 0 is the receiver; for static calls
  /// arg 0 is Args[0].
  VarId callArg(const Stmt &S, size_t K) const;

  /// Number of call arguments including the receiver slot (if any).
  size_t numCallArgs(const Stmt &S) const;

  /// Human-readable method signature "Owner.name/arity".
  std::string methodString(MethodId M) const;

  /// Drops the memoized subtype/dispatch answers. Must be called after a
  /// delta mutates the class hierarchy (new classes, new methods): the
  /// memos were computed against the pre-delta hierarchy and a cached
  /// negative dispatch answer could otherwise hide a newly added method.
  void invalidateHierarchyCaches() const;

private:
  bool computeSubtype(TypeId Sub, TypeId Sup) const;

  std::vector<TypeInfo> Types;
  std::unordered_map<std::string, TypeId> TypeByName;
  std::vector<FieldInfo> Fields;
  std::vector<MethodInfo> Methods;
  std::vector<VarInfo> Vars;
  std::vector<Stmt> Stmts;
  std::vector<ObjInfo> Objs;
  std::vector<CallSiteInfo> CallSites;
  Interner<std::string> Subsigs;
  TypeId ObjectTy = InvalidId;
  MethodId Entry = InvalidId;

  mutable std::unordered_map<std::pair<uint32_t, uint32_t>, bool, PairHash>
      SubtypeCache;
  mutable std::unordered_map<std::pair<uint32_t, uint32_t>, MethodId, PairHash>
      DispatchCache;
};

} // namespace csc

#endif // CSC_IR_PROGRAM_H
