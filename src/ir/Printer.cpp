//===- Printer.cpp - Pretty printer for the textual IR --------------------===//
//
// Part of the Cut-Shortcut pointer analysis reproduction.
//
//===----------------------------------------------------------------------===//

#include "ir/Printer.h"

#include <cassert>
#include <sstream>

using namespace csc;

namespace {

/// Stateful printer sharing the output stream and program reference.
class PrinterImpl {
public:
  PrinterImpl(const Program &P, std::ostringstream &OS) : P(P), OS(OS) {}

  void printAll();
  void printStmtLine(StmtId S, int Indent);
  std::string stmtText(StmtId S);

private:
  void printClass(TypeId T);
  void printMethod(MethodId M);
  void printBlock(const std::vector<StmtId> &Body, int Indent);
  std::string typeName(TypeId T) const {
    return T == InvalidId ? "void" : P.type(T).Name;
  }
  std::string varName(VarId V) const { return P.var(V).Name; }
  void indent(int N) {
    for (int I = 0; I < N; ++I)
      OS << "  ";
  }

  const Program &P;
  std::ostringstream &OS;
};

void PrinterImpl::printAll() {
  for (TypeId T = 0; T < P.numTypes(); ++T) {
    const TypeInfo &TI = P.type(T);
    if (T == P.objectType() || TI.Kind == TypeKind::Array || !TI.Defined)
      continue;
    printClass(T);
  }
}

void PrinterImpl::printClass(TypeId T) {
  const TypeInfo &TI = P.type(T);
  if (TI.Kind == TypeKind::Interface) {
    OS << "interface " << TI.Name;
  } else {
    if (TI.IsAbstract)
      OS << "abstract ";
    OS << "class " << TI.Name;
    if (TI.Super != InvalidId && TI.Super != P.objectType())
      OS << " extends " << typeName(TI.Super);
  }
  if (!TI.Interfaces.empty()) {
    OS << (TI.Kind == TypeKind::Interface ? " extends " : " implements ");
    for (size_t I = 0; I != TI.Interfaces.size(); ++I)
      OS << (I ? ", " : "") << typeName(TI.Interfaces[I]);
  }
  OS << " {\n";
  for (FieldId F : TI.Fields) {
    const FieldInfo &FI = P.field(F);
    OS << "  " << (FI.IsStatic ? "static field " : "field ") << FI.Name
       << ": " << typeName(FI.DeclaredType) << ";\n";
  }
  for (MethodId M : TI.Methods)
    printMethod(M);
  OS << "}\n";
}

void PrinterImpl::printMethod(MethodId M) {
  const MethodInfo &MI = P.method(M);
  OS << "  ";
  if (MI.IsStatic)
    OS << "static ";
  if (MI.IsAbstract)
    OS << "abstract ";
  OS << "method " << MI.Name << "(";
  size_t FirstParam = MI.IsStatic ? 0 : 1;
  for (size_t I = FirstParam; I < MI.Params.size(); ++I) {
    if (I != FirstParam)
      OS << ", ";
    OS << varName(MI.Params[I]) << ": "
       << typeName(P.var(MI.Params[I]).DeclaredType);
  }
  OS << "): " << typeName(MI.RetType);
  if (MI.IsAbstract) {
    OS << ";\n";
    return;
  }
  OS << " {\n";
  // Declare non-parameter locals up front.
  for (VarId V : MI.Vars) {
    bool IsParam = false;
    for (VarId PV : MI.Params)
      IsParam = IsParam || PV == V;
    if (!IsParam)
      OS << "    var " << varName(V) << ": "
         << typeName(P.var(V).DeclaredType) << ";\n";
  }
  printBlock(MI.Body, 2);
  OS << "  }\n";
}

void PrinterImpl::printBlock(const std::vector<StmtId> &Body, int Indent) {
  for (StmtId S : Body)
    printStmtLine(S, Indent);
}

void PrinterImpl::printStmtLine(StmtId SId, int Indent) {
  const Stmt &S = P.stmt(SId);
  if (S.Kind == StmtKind::If) {
    indent(Indent);
    OS << "if ? {\n";
    printBlock(S.ThenBody, Indent + 1);
    indent(Indent);
    if (!S.ElseBody.empty()) {
      OS << "} else {\n";
      printBlock(S.ElseBody, Indent + 1);
      indent(Indent);
    }
    OS << "}\n";
    return;
  }
  indent(Indent);
  OS << stmtText(SId) << "\n";
}

std::string PrinterImpl::stmtText(StmtId SId) {
  const Stmt &S = P.stmt(SId);
  std::ostringstream T;
  switch (S.Kind) {
  case StmtKind::New:
    T << varName(S.To) << " = new " << typeName(S.Type) << ";";
    break;
  case StmtKind::NewArray:
    T << varName(S.To) << " = new "
      << typeName(P.type(S.Type).ArrayElem) << "[];";
    break;
  case StmtKind::Assign:
    T << varName(S.To) << " = " << varName(S.From) << ";";
    break;
  case StmtKind::Cast:
    T << varName(S.To) << " = (" << typeName(S.Type) << ") "
      << varName(S.From) << ";";
    break;
  case StmtKind::Load:
    T << varName(S.To) << " = " << varName(S.Base) << "."
      << P.field(S.Field).Name << ";";
    break;
  case StmtKind::Store:
    T << varName(S.Base) << "." << P.field(S.Field).Name << " = "
      << varName(S.From) << ";";
    break;
  case StmtKind::ArrayLoad:
    T << varName(S.To) << " = " << varName(S.Base) << "[*];";
    break;
  case StmtKind::ArrayStore:
    T << varName(S.Base) << "[*] = " << varName(S.From) << ";";
    break;
  case StmtKind::StaticLoad:
    T << varName(S.To) << " = " << typeName(P.field(S.Field).Owner) << "::"
      << P.field(S.Field).Name << ";";
    break;
  case StmtKind::StaticStore:
    T << typeName(P.field(S.Field).Owner) << "::" << P.field(S.Field).Name
      << " = " << varName(S.From) << ";";
    break;
  case StmtKind::Invoke: {
    if (S.To != InvalidId)
      T << varName(S.To) << " = ";
    switch (S.IKind) {
    case InvokeKind::Virtual: {
      // Subsig is "name/arity"; strip the arity suffix.
      const std::string &Sig = P.subsigName(S.Subsig);
      std::string Name = Sig.substr(0, Sig.rfind('/'));
      T << "call " << varName(S.Base) << "." << Name;
      break;
    }
    case InvokeKind::Static:
      T << "scall " << typeName(P.method(S.DirectCallee).Owner) << "."
        << P.method(S.DirectCallee).Name;
      break;
    case InvokeKind::Special:
      T << "dcall " << varName(S.Base) << "."
        << typeName(P.method(S.DirectCallee).Owner) << "."
        << P.method(S.DirectCallee).Name;
      break;
    }
    T << "(";
    for (size_t I = 0; I != S.Args.size(); ++I)
      T << (I ? ", " : "") << varName(S.Args[I]);
    T << ");";
    break;
  }
  case StmtKind::Return:
    if (S.From != InvalidId)
      T << "return " << varName(S.From) << ";";
    else
      T << "return;";
    break;
  case StmtKind::If:
    T << "if ? { ... }";
    break;
  }
  return T.str();
}

} // namespace

std::string csc::printProgram(const Program &P) {
  std::ostringstream OS;
  PrinterImpl(P, OS).printAll();
  return OS.str();
}

std::string csc::printStmt(const Program &P, StmtId S) {
  std::ostringstream OS;
  return PrinterImpl(P, OS).stmtText(S);
}
