//===- Stmt.h - IR statements -----------------------------------*- C++ -*-===//
//
// Part of the Cut-Shortcut pointer analysis reproduction.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Statement representation of the Java-like IR. The statement vocabulary is
/// exactly what a Java pointer analysis consumes (cf. Fig. 7 of the paper):
/// allocation, local assignment, cast, instance field load/store, array
/// load/store (index-insensitive), static field load/store, invocation,
/// return, and a nondeterministic branch used only by the interpreter (the
/// analysis is flow-insensitive and simply visits all nested statements).
///
//===----------------------------------------------------------------------===//

#ifndef CSC_IR_STMT_H
#define CSC_IR_STMT_H

#include "support/Ids.h"

#include <vector>

namespace csc {

enum class StmtKind : uint8_t {
  New,         ///< To = new Type            (allocation site Obj)
  NewArray,    ///< To = new Type[]          (allocation site Obj)
  Assign,      ///< To = From
  Cast,        ///< To = (Type) From         (type-filtered assignment)
  Load,        ///< To = Base.Field
  Store,       ///< Base.Field = From
  ArrayLoad,   ///< To = Base[*]
  ArrayStore,  ///< Base[*] = From
  StaticLoad,  ///< To = Class::Field
  StaticStore, ///< Class::Field = From
  Invoke,      ///< [To =] call/scall/dcall ...
  Return,      ///< return [From]
  If,          ///< if ? { Then } else { Else }   (nondeterministic branch)
};

enum class InvokeKind : uint8_t {
  Virtual, ///< Dispatched on the dynamic type of the receiver.
  Static,  ///< Direct call, no receiver.
  Special, ///< Direct call with receiver (constructors, super calls).
};

/// One IR statement. A single struct with kind-dependent slots keeps the IR
/// simple to build, print, parse, and interpret; unused slots are InvalidId.
struct Stmt {
  StmtKind Kind;
  MethodId Method = InvalidId; ///< Enclosing method.
  uint32_t Line = 0;           ///< Source line (0 if built programmatically).

  VarId To = InvalidId;   ///< Defined variable (New/Assign/Cast/loads/Invoke).
  VarId From = InvalidId; ///< Source variable (Assign/Cast/stores/Return).
  VarId Base = InvalidId; ///< Receiver/base (field & array accesses, Invoke).

  TypeId Type = InvalidId;   ///< New/NewArray allocated type; Cast target.
  FieldId Field = InvalidId; ///< Load/Store/StaticLoad/StaticStore.
  ObjId Obj = InvalidId;     ///< Allocation site id (New/NewArray).

  // Invoke-only slots.
  CallSiteId CallSite = InvalidId;
  InvokeKind IKind = InvokeKind::Virtual;
  MethodId DirectCallee = InvalidId; ///< Static/Special resolved target.
  uint32_t Subsig = InvalidId;       ///< Virtual dispatch key (name/arity).
  std::vector<VarId> Args;           ///< Arguments, excluding the receiver.

  // If-only slots: ids of the nested statements of each branch.
  std::vector<StmtId> ThenBody;
  std::vector<StmtId> ElseBody;

  bool isInvoke() const { return Kind == StmtKind::Invoke; }
  bool isAllocation() const {
    return Kind == StmtKind::New || Kind == StmtKind::NewArray;
  }
};

} // namespace csc

#endif // CSC_IR_STMT_H
