//===- Verifier.cpp - IR well-formedness checks ---------------------------===//
//
// Part of the Cut-Shortcut pointer analysis reproduction.
//
//===----------------------------------------------------------------------===//

#include "ir/Verifier.h"

#include <sstream>

using namespace csc;

namespace {

class VerifierImpl {
public:
  explicit VerifierImpl(const Program &P) : P(P) {}

  std::vector<std::string> run();

private:
  void error(const std::string &Msg) { Errors.push_back(Msg); }
  void checkStmt(MethodId M, StmtId S);
  void checkVarIn(MethodId M, VarId V, const char *Role, StmtId S);

  const Program &P;
  std::vector<std::string> Errors;
};

void VerifierImpl::checkVarIn(MethodId M, VarId V, const char *Role,
                              StmtId S) {
  if (V >= P.numVars()) {
    std::ostringstream OS;
    OS << "stmt " << S << ": " << Role << " variable id out of range";
    error(OS.str());
    return;
  }
  if (P.var(V).Method != M) {
    std::ostringstream OS;
    OS << "stmt " << S << ": " << Role << " variable '" << P.var(V).Name
       << "' belongs to a different method";
    error(OS.str());
  }
}

void VerifierImpl::checkStmt(MethodId M, StmtId SId) {
  const Stmt &S = P.stmt(SId);
  if (S.Method != M) {
    error("stmt owner mismatch");
    return;
  }
  switch (S.Kind) {
  case StmtKind::New:
  case StmtKind::NewArray: {
    checkVarIn(M, S.To, "target", SId);
    const TypeInfo &TI = P.type(S.Type);
    if (!TI.Defined)
      error("allocation of undefined type '" + TI.Name + "'");
    if (S.Kind == StmtKind::New && TI.IsAbstract)
      error("allocation of abstract type '" + TI.Name + "'");
    if (S.Obj == InvalidId)
      error("allocation without object id");
    break;
  }
  case StmtKind::Assign:
    checkVarIn(M, S.To, "target", SId);
    checkVarIn(M, S.From, "source", SId);
    break;
  case StmtKind::Cast:
    checkVarIn(M, S.To, "target", SId);
    checkVarIn(M, S.From, "source", SId);
    if (!P.type(S.Type).Defined)
      error("cast to undefined type '" + P.type(S.Type).Name + "'");
    break;
  case StmtKind::Load:
    checkVarIn(M, S.To, "target", SId);
    checkVarIn(M, S.Base, "base", SId);
    if (S.Field == InvalidId || P.field(S.Field).IsStatic)
      error("load requires an instance field");
    break;
  case StmtKind::Store:
    checkVarIn(M, S.Base, "base", SId);
    checkVarIn(M, S.From, "source", SId);
    if (S.Field == InvalidId || P.field(S.Field).IsStatic)
      error("store requires an instance field");
    break;
  case StmtKind::ArrayLoad:
    checkVarIn(M, S.To, "target", SId);
    checkVarIn(M, S.Base, "base", SId);
    break;
  case StmtKind::ArrayStore:
    checkVarIn(M, S.Base, "base", SId);
    checkVarIn(M, S.From, "source", SId);
    break;
  case StmtKind::StaticLoad:
    checkVarIn(M, S.To, "target", SId);
    if (S.Field == InvalidId || !P.field(S.Field).IsStatic)
      error("static load requires a static field");
    break;
  case StmtKind::StaticStore:
    checkVarIn(M, S.From, "source", SId);
    if (S.Field == InvalidId || !P.field(S.Field).IsStatic)
      error("static store requires a static field");
    break;
  case StmtKind::Invoke: {
    if (S.To != InvalidId)
      checkVarIn(M, S.To, "target", SId);
    for (VarId A : S.Args)
      checkVarIn(M, A, "argument", SId);
    switch (S.IKind) {
    case InvokeKind::Virtual:
      checkVarIn(M, S.Base, "receiver", SId);
      if (S.Subsig == InvalidId)
        error("virtual call without subsignature");
      break;
    case InvokeKind::Static:
      if (S.DirectCallee == InvalidId || !P.method(S.DirectCallee).IsStatic)
        error("static call requires a static callee");
      break;
    case InvokeKind::Special:
      checkVarIn(M, S.Base, "receiver", SId);
      if (S.DirectCallee == InvalidId || P.method(S.DirectCallee).IsStatic)
        error("special call requires an instance callee");
      break;
    }
    if (S.CallSite == InvalidId)
      error("call without call-site id");
    break;
  }
  case StmtKind::Return:
    if (S.From != InvalidId) {
      checkVarIn(M, S.From, "returned", SId);
      if (P.method(M).RetType == InvalidId)
        error("return with value in void method " + P.methodString(M));
    }
    break;
  case StmtKind::If:
    for (StmtId T : S.ThenBody)
      checkStmt(M, T);
    for (StmtId E : S.ElseBody)
      checkStmt(M, E);
    break;
  }
}

std::vector<std::string> VerifierImpl::run() {
  for (TypeId T = 0; T < P.numTypes(); ++T) {
    const TypeInfo &TI = P.type(T);
    if (!TI.Defined)
      error("type '" + TI.Name + "' referenced but never defined");
  }
  for (MethodId M = 0; M < P.numMethods(); ++M) {
    const MethodInfo &MI = P.method(M);
    if (MI.IsAbstract && !MI.AllStmts.empty())
      error("abstract method " + P.methodString(M) + " has a body");
    for (StmtId S : MI.Body)
      checkStmt(M, S);
  }
  return std::move(Errors);
}

} // namespace

std::vector<std::string> csc::verifyProgram(const Program &P) {
  return VerifierImpl(P).run();
}
