//===- IRBuilder.cpp - Programmatic IR construction -----------------------===//
//
// Part of the Cut-Shortcut pointer analysis reproduction.
//
//===----------------------------------------------------------------------===//

#include "ir/IRBuilder.h"

#include <cassert>

using namespace csc;

VarId MethodBuilder::thisVar() const {
  const MethodInfo &MI = P.method(M);
  assert(!MI.IsStatic && "static methods have no `this`");
  return MI.Params[0];
}

VarId MethodBuilder::param(size_t I) const {
  const MethodInfo &MI = P.method(M);
  size_t Idx = MI.IsStatic ? I : I + 1;
  assert(Idx < MI.Params.size() && "parameter index out of range");
  return MI.Params[Idx];
}

StmtId MethodBuilder::append(Stmt S) {
  S.Method = M;
  StmtId Id = P.addStmt(std::move(S));
  if (Stack.empty())
    P.methodMut(M).Body.push_back(Id);
  else
    Stack.back().Cur.push_back(Id);
  return Id;
}

StmtId MethodBuilder::newObj(VarId To, TypeId T) {
  Stmt S;
  S.Kind = StmtKind::New;
  S.To = To;
  S.Type = T;
  S.Method = M;
  StmtId Id = append(std::move(S));
  P.stmtMut(Id).Obj = P.addObj(T, Id, M, /*IsArray=*/false);
  return Id;
}

StmtId MethodBuilder::newArray(VarId To, TypeId ArrayType) {
  assert(P.type(ArrayType).Kind == TypeKind::Array && "not an array type");
  Stmt S;
  S.Kind = StmtKind::NewArray;
  S.To = To;
  S.Type = ArrayType;
  StmtId Id = append(std::move(S));
  P.stmtMut(Id).Obj = P.addObj(ArrayType, Id, M, /*IsArray=*/true);
  return Id;
}

StmtId MethodBuilder::assign(VarId To, VarId From) {
  Stmt S;
  S.Kind = StmtKind::Assign;
  S.To = To;
  S.From = From;
  return append(std::move(S));
}

StmtId MethodBuilder::cast(VarId To, TypeId T, VarId From) {
  Stmt S;
  S.Kind = StmtKind::Cast;
  S.To = To;
  S.Type = T;
  S.From = From;
  return append(std::move(S));
}

StmtId MethodBuilder::load(VarId To, VarId Base, FieldId F) {
  Stmt S;
  S.Kind = StmtKind::Load;
  S.To = To;
  S.Base = Base;
  S.Field = F;
  return append(std::move(S));
}

StmtId MethodBuilder::loadField(VarId To, VarId Base,
                                const std::string &FieldName) {
  FieldId F = P.resolveField(P.var(Base).DeclaredType, FieldName);
  assert(F != InvalidId && "unknown field");
  return load(To, Base, F);
}

StmtId MethodBuilder::store(VarId Base, FieldId F, VarId From) {
  Stmt S;
  S.Kind = StmtKind::Store;
  S.Base = Base;
  S.Field = F;
  S.From = From;
  return append(std::move(S));
}

StmtId MethodBuilder::storeField(VarId Base, const std::string &FieldName,
                                 VarId From) {
  FieldId F = P.resolveField(P.var(Base).DeclaredType, FieldName);
  assert(F != InvalidId && "unknown field");
  return store(Base, F, From);
}

StmtId MethodBuilder::arrayLoad(VarId To, VarId Base) {
  Stmt S;
  S.Kind = StmtKind::ArrayLoad;
  S.To = To;
  S.Base = Base;
  return append(std::move(S));
}

StmtId MethodBuilder::arrayStore(VarId Base, VarId From) {
  Stmt S;
  S.Kind = StmtKind::ArrayStore;
  S.Base = Base;
  S.From = From;
  return append(std::move(S));
}

StmtId MethodBuilder::staticLoad(VarId To, FieldId F) {
  // F may be InvalidId when the frontend defers resolution to finalize().
  assert((F == InvalidId || P.field(F).IsStatic) &&
         "staticLoad of instance field");
  Stmt S;
  S.Kind = StmtKind::StaticLoad;
  S.To = To;
  S.Field = F;
  return append(std::move(S));
}

StmtId MethodBuilder::staticStore(FieldId F, VarId From) {
  assert((F == InvalidId || P.field(F).IsStatic) &&
         "staticStore of instance field");
  Stmt S;
  S.Kind = StmtKind::StaticStore;
  S.Field = F;
  S.From = From;
  return append(std::move(S));
}

StmtId MethodBuilder::callVirtual(VarId To, VarId Base,
                                  const std::string &Name,
                                  std::vector<VarId> Args) {
  Stmt S;
  S.Kind = StmtKind::Invoke;
  S.IKind = InvokeKind::Virtual;
  S.To = To;
  S.Base = Base;
  S.Subsig = P.subsig(Name, Args.size());
  S.Args = std::move(Args);
  StmtId Id = append(std::move(S));
  P.stmtMut(Id).CallSite = P.addCallSite(Id, M);
  return Id;
}

StmtId MethodBuilder::callStatic(VarId To, MethodId Callee,
                                 std::vector<VarId> Args) {
  assert((Callee == InvalidId || P.method(Callee).IsStatic) &&
         "callStatic to instance method");
  Stmt S;
  S.Kind = StmtKind::Invoke;
  S.IKind = InvokeKind::Static;
  S.To = To;
  S.DirectCallee = Callee;
  S.Args = std::move(Args);
  StmtId Id = append(std::move(S));
  P.stmtMut(Id).CallSite = P.addCallSite(Id, M);
  return Id;
}

StmtId MethodBuilder::callSpecial(VarId To, VarId Base, MethodId Callee,
                                  std::vector<VarId> Args) {
  assert((Callee == InvalidId || !P.method(Callee).IsStatic) &&
         "callSpecial to static method");
  Stmt S;
  S.Kind = StmtKind::Invoke;
  S.IKind = InvokeKind::Special;
  S.To = To;
  S.Base = Base;
  S.DirectCallee = Callee;
  S.Args = std::move(Args);
  StmtId Id = append(std::move(S));
  P.stmtMut(Id).CallSite = P.addCallSite(Id, M);
  return Id;
}

StmtId MethodBuilder::ret(VarId V) {
  Stmt S;
  S.Kind = StmtKind::Return;
  S.From = V;
  return append(std::move(S));
}

void MethodBuilder::beginIf() {
  Stmt S;
  S.Kind = StmtKind::If;
  StmtId Id = append(std::move(S));
  Frame F;
  F.IfStmt = Id;
  Stack.push_back(std::move(F));
}

void MethodBuilder::elseBranch() {
  assert(!Stack.empty() && "elseBranch outside of if");
  Frame &F = Stack.back();
  assert(!F.InElse && "duplicate elseBranch");
  F.ThenSaved = std::move(F.Cur);
  F.Cur.clear();
  F.InElse = true;
}

void MethodBuilder::endIf() {
  assert(!Stack.empty() && "endIf outside of if");
  Frame F = std::move(Stack.back());
  Stack.pop_back();
  Stmt &S = P.stmtMut(F.IfStmt);
  if (F.InElse) {
    S.ThenBody = std::move(F.ThenSaved);
    S.ElseBody = std::move(F.Cur);
  } else {
    S.ThenBody = std::move(F.Cur);
  }
}

TypeId IRBuilder::cls(const std::string &Name, const std::string &Super,
                      bool IsAbstract) {
  TypeId SuperId =
      Super.empty() ? P.objectType() : P.getOrCreateType(Super);
  return P.defineClass(Name, SuperId, {}, TypeKind::Class, IsAbstract);
}

TypeId IRBuilder::iface(const std::string &Name) {
  return P.defineClass(Name, InvalidId, {}, TypeKind::Interface);
}

FieldId IRBuilder::field(TypeId Owner, const std::string &Name, TypeId Ty,
                         bool IsStatic) {
  return P.addField(Owner, Name, Ty, IsStatic);
}

MethodBuilder IRBuilder::method(TypeId Owner, const std::string &Name,
                                std::vector<TypeId> ParamTypes,
                                TypeId RetType, bool IsStatic) {
  MethodId M = P.addMethod(Owner, Name, std::move(ParamTypes), RetType,
                           IsStatic, /*IsAbstract=*/false);
  return MethodBuilder(P, M);
}

MethodId IRBuilder::abstractMethod(TypeId Owner, const std::string &Name,
                                   std::vector<TypeId> ParamTypes,
                                   TypeId RetType) {
  return P.addMethod(Owner, Name, std::move(ParamTypes), RetType,
                     /*IsStatic=*/false, /*IsAbstract=*/true);
}
