//===- ResultStore.h - Persistent content-addressed result cache -*- C++ -*-===//
//
// Part of the Cut-Shortcut pointer analysis reproduction.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// An on-disk, content-addressed cache of completed analysis results —
/// the L2 layer under the in-process ResultCache LRU. Keys fingerprint
/// everything a result depends on (program content, canonical spec,
/// budgets, registry identity — see resultStoreKey); values are
/// checksummed binary StoredResult entries (store/ResultCodec.h).
///
/// Layout under the store directory:
///
///   objects/<fnv64(key) as 16 hex>.csce   one entry per key
///   index.bin                             validated manifest of entries
///   store.lock                            advisory flock for index writes
///
/// Entry file format: 8-byte magic, u32 format version, u64 FNV-1a body
/// checksum, body (u32 key length + key bytes, u64 payload length,
/// payload). The full key is embedded and compared on every lookup, so a
/// key-hash collision is a plain miss, never a wrong answer.
///
/// Failure discipline — the store may only ever make things slower,
/// never wrong, and never crash:
///
///  * Every lookup re-validates the entry file end to end (magic,
///    version, checksum, key, decode). Any mismatch is a miss, counted
///    as a corrupt eviction, and (with Options::Repair, the default) the
///    bad file is unlinked so the next publish heals it.
///  * Publishes are atomic: the entry is written to a temp file in the
///    same directory and rename()d into place, so concurrent readers and
///    writers — including other processes — see either the old complete
///    entry or the new complete entry, never a partial write. Racing
///    publishers of one key write identical bytes by construction (the
///    key fingerprints the inputs), so last-rename-wins is harmless.
///  * The index is a manifest, not an authority: lookups trust only the
///    entry files. A missing/corrupt index triggers a rebuild — a full
///    directory sweep that validates every entry (evicting corrupt ones)
///    and rewrites the manifest under the advisory lock.
///  * An unusable directory (not creatable/writable) degrades the whole
///    store to a no-op: usable() turns false, lookups miss, publishes
///    fail silently into counters.
///
/// Thread-safety: one ResultStore handle is fully thread-safe (a single
/// internal mutex). Any number of handles — in one process or many — may
/// share a directory; cross-process index updates serialize on flock().
///
//===----------------------------------------------------------------------===//

#ifndef CSC_STORE_RESULTSTORE_H
#define CSC_STORE_RESULTSTORE_H

#include "store/ResultCodec.h"

#include <functional>
#include <map>
#include <mutex>
#include <string>

namespace csc {

class AnalysisRegistry;

/// FNV-1a fingerprint of a registry's identity — the sorted (name,
/// description) listing. Two processes resolve a spec identically when
/// their registries fingerprint identically (adding, removing, or
/// redefining an analysis changes the value), which is what makes the
/// fingerprint a safe cross-process stand-in for the in-process
/// registry-address component of the L1 cache key.
uint64_t registryFingerprint(const AnalysisRegistry &R);

/// Composes the portable store key for one (program, spec, budgets)
/// request. \p CanonicalSpec must already be alias-resolved and
/// canonicalized (AnalysisRegistry::resolveName + canonicalSpec), exactly
/// as the batch executor's L1 key does.
std::string resultStoreKey(uint64_t ProgramFingerprint,
                           uint64_t WorkBudget, double TimeBudgetMs,
                           uint64_t RegistryFingerprint,
                           const std::string &CanonicalSpec);

class ResultStore {
public:
  struct Options {
    std::string Dir; ///< Store directory; created if absent.
    /// Unlink entries that fail validation and rebuild the index when it
    /// does — the self-repair mode. Off, corrupt files are left in place
    /// (still misses) for post-mortem inspection.
    bool Repair = true;
    /// GC byte budget for objects/ (0 = unbounded). When the validated
    /// entries exceed it, the least-recently-accessed ones are evicted
    /// until the survivors fit — except entries pinned by a live task
    /// ledger (`<Dir>/ledger.bin`), which a coordinator still needs.
    uint64_t MaxBytes = 0;
    /// GC age bound in milliseconds (0 = unbounded): entries not
    /// accessed for longer are evicted regardless of the byte budget.
    uint64_t MaxAgeMs = 0;
    /// Clock in milliseconds for access stamps and age math (wall clock
    /// by default — stamps are shared across processes). Tests inject a
    /// fake clock to step through age schedules.
    std::function<uint64_t()> NowMs;
    /// Fault injection: fail every file write, as ENOSPC would. The
    /// store must degrade to counted publish failures, never crash.
    bool TestFailWrites = false;
  };

  /// Monotonic per-handle statistics (never persisted).
  struct Counters {
    uint64_t Hits = 0;
    uint64_t Misses = 0;
    uint64_t Publishes = 0;
    uint64_t PublishFailures = 0;
    uint64_t CorruptEvictions = 0; ///< Entries failing validation.
    uint64_t IndexRebuilds = 0;    ///< Invalid-index recovery sweeps.
    uint64_t GcEvictions = 0;      ///< Entries retired by age/size GC.
  };

  /// One full-store validation sweep's outcome.
  struct ScrubReport {
    uint64_t Valid = 0;
    uint64_t Corrupt = 0; ///< Failed validation (evicted under Repair).
    uint64_t Bytes = 0;   ///< Total size of the valid entries.
  };

  /// One age/size GC pass's outcome.
  struct GcReport {
    uint64_t Evicted = 0;
    uint64_t FreedBytes = 0;
    uint64_t Pinned = 0; ///< Over-budget entries spared by a live lease.
  };

  /// Opens (creating if needed) the store at Options::Dir and loads the
  /// index, rebuilding it when invalid; when GC bounds are configured,
  /// runs a GC pass over the loaded index. Never throws: an unusable
  /// directory leaves the handle in the degraded no-op state.
  explicit ResultStore(Options O);

  /// Flushes access-time stamps accumulated by lookups into the on-disk
  /// index (max-merge under the advisory lock), so LRU order survives
  /// the handle.
  ~ResultStore();

  /// False when the directory could not be created/used; error() says
  /// why. A degraded store misses every lookup and drops every publish.
  bool usable() const;
  const std::string &error() const { return Err; }
  const Options &options() const { return Opts; }

  /// True (filling \p Out) when a fully validated entry for \p Key
  /// exists. Any validation failure is a miss; corrupt entries are
  /// counted and, under Repair, unlinked.
  bool lookup(const std::string &Key, StoredResult &Out);

  /// Atomically writes the entry for \p Key and records it in the index.
  /// False (counted) on I/O failure. An existing valid entry is left
  /// untouched — identical bytes by construction.
  bool publish(const std::string &Key, const StoredResult &Value);

  /// Validates every entry in the directory (evicting corrupt ones under
  /// Repair) and rewrites the index from the survivors.
  ScrubReport scrub();

  /// Runs one age/size GC pass against Options::MaxBytes / MaxAgeMs:
  /// evicts least-recently-accessed entries until the rest fit the byte
  /// budget, plus anything older than the age bound — never an entry
  /// whose key a live task ledger pins. A no-op when no bound is set.
  GcReport gc();

  Counters counters() const;

private:
  struct IndexRecord {
    std::string File; ///< Basename under objects/.
    uint64_t Checksum = 0;
    uint64_t Bytes = 0;
    uint64_t LastAccessMs = 0; ///< LRU stamp for GC eviction order.
  };

  uint64_t nowMs() const;
  GcReport gcLocked();
  void flushAccessLocked();
  std::string objectPath(const std::string &Key) const;
  /// Reads + fully validates one entry file. Returns 0 on a valid entry
  /// (key + payload out), 1 when the file is absent (plain miss), 2 on
  /// corruption (caller counts/evicts), 3 on a key-hash collision (valid
  /// entry for some other key: plain miss, never evicted).
  int readEntry(const std::string &Path, const std::string &ExpectKey,
                std::string &KeyOut, std::string &PayloadOut,
                uint64_t &ChecksumOut) const;
  void evictLocked(const std::string &Path, const std::string &Key);
  ScrubReport sweepLocked();
  bool loadIndexLocked();
  bool writeIndexLocked() const;
  void mergeIndexOnDiskLocked(const std::string &Key,
                              const IndexRecord &Rec);
  bool parseIndexBytes(const std::string &Bytes,
                       std::map<std::string, IndexRecord> &Out) const;
  std::string indexBytesLocked(
      const std::map<std::string, IndexRecord> &Records) const;
  bool writeFileAtomic(const std::string &FinalPath,
                       const std::string &Bytes) const;

  Options Opts;
  std::string Err; ///< Non-empty when the store is degraded.
  mutable std::mutex M;
  std::map<std::string, IndexRecord> Index; ///< Key -> manifest record.
  Counters Stats;
  mutable uint64_t TempSeq = 0; ///< Uniquifies temp names in the handle.
  bool AccessDirty = false; ///< Lookup stamps not yet flushed to disk.
};

} // namespace csc

#endif // CSC_STORE_RESULTSTORE_H
