//===- ResultCodec.h - Binary (de)serialization of analysis runs -*- C++ -*-===//
//
// Part of the Cut-Shortcut pointer analysis reproduction.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The value format of the persistent result store: a completed analysis
/// run — PTAResult, precision metrics, per-analysis extras, and the
/// timing-free run report — encoded to bytes and back.
///
/// The encoding is canonical: unordered containers are written in sorted
/// key order and points-to sets as ascending id lists, so serializing a
/// result, deserializing it, and serializing again yields byte-identical
/// output (the round-trip property tests/store/ResultCodecTest.cpp pins).
/// Canonical bytes are what make content checksums meaningful — two
/// equal results can never disagree about their serialized form.
///
/// Deserialization is bounds-checked end to end and returns false on any
/// malformed input; it never crashes and never fabricates partial
/// results. The store validates checksums before decoding, so a decode
/// failure there means a format-version mismatch, and the entry degrades
/// to a miss.
///
//===----------------------------------------------------------------------===//

#ifndef CSC_STORE_RESULTCODEC_H
#define CSC_STORE_RESULTCODEC_H

#include "client/AnalysisSession.h"
#include "support/BinaryIO.h"

#include <string>
#include <vector>

namespace csc {

/// Everything the store keeps per (program, spec, budgets) key: enough to
/// reconstruct both a batch report row (RunJson + metrics) and a full
/// AnalysisRun for single-run and server clients (result + extras).
struct StoredResult {
  RunStatus Status = RunStatus::Completed;
  std::string Error; ///< Populated for SpecError (never stored today).
  PrecisionMetrics Metrics;
  /// Timing-free run report under the canonical spec name
  /// (appendRunJson with IncludeTimings=false) — spliced verbatim into
  /// batch aggregates, which is what makes a store-served batch
  /// byte-identical to a computed one.
  std::string RunJson;
  uint32_t SelectedMethods = 0; ///< Zipper-e selection size.
  uint64_t CutStores = 0;       ///< Cut-Shortcut statistics.
  uint64_t CutReturns = 0;
  uint64_t ShortcutEdges = 0;
  std::vector<MethodId> InvolvedMethods; ///< Sorted ascending.
  PTAResult Result;
};

/// Appends the canonical encoding of \p R to \p W.
void serializePTAResult(const PTAResult &R, BinaryWriter &W);

/// Decodes one PTAResult; false on malformed/truncated input (\p Out is
/// then unspecified). Consumes exactly what serializePTAResult wrote.
bool deserializePTAResult(BinaryReader &R, PTAResult &Out);

/// Deep equality of two results — every projection map, callee list,
/// reachable set, and serialized counter. Scheduling diagnostics
/// (WorklistPops, SccStats) and TimeMs are included: the codec stores
/// them, so a round trip must preserve them bit-for-bit too.
bool resultsEqual(const PTAResult &A, const PTAResult &B);

/// One StoredResult as a standalone byte string / parsed back. The store
/// checksums and frames these bytes; the codec itself has no header.
std::string serializeStoredResult(const StoredResult &S);
bool deserializeStoredResult(const std::string &Bytes, StoredResult &Out);

/// Converts a computed run into its stored form. \p RunJson must be the
/// timing-free report serialized under the canonical spec name.
StoredResult storedFromRun(const AnalysisRun &Run, std::string RunJson);

/// Reconstructs an AnalysisRun from a stored value. Name and Timings are
/// left defaulted — the caller sets the display name (the original spec
/// spelling) and charges the store-load wall time.
AnalysisRun runFromStored(const StoredResult &S);

} // namespace csc

#endif // CSC_STORE_RESULTCODEC_H
