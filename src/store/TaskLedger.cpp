//===- TaskLedger.cpp - Crash-safe lease ledger for batch tasks -----------===//
//
// Part of the Cut-Shortcut pointer analysis reproduction.
//
//===----------------------------------------------------------------------===//

#include "store/TaskLedger.h"

#include "support/BinaryIO.h"
#include "support/Hash.h"

#include <atomic>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <sstream>

#ifndef _WIN32
#include <fcntl.h>
#include <sys/file.h>
#include <unistd.h>
#define CSC_LEDGER_POSIX 1
#endif

using namespace csc;

namespace {

// Framing mirrors the result store's entry/index files: magic, format
// version, FNV-1a body checksum, body. A torn or flipped ledger fails
// the checksum and degrades to Error statuses instead of mis-leasing.
constexpr char LedgerMagic[8] = {'C', 'S', 'C', 'P', 'T', 'A', 'L', '1'};
constexpr uint32_t LedgerVersion = 1;
constexpr size_t HeaderBytes = 8 + 4 + 8;

bool readWholeFile(const std::string &Path, std::string &Out) {
  std::ifstream In(Path, std::ios::binary);
  if (!In)
    return false;
  std::ostringstream Buf;
  Buf << In.rdbuf();
  Out = Buf.str();
  return In.good() || In.eof();
}

std::string frameLedger(const std::string &Body) {
  BinaryWriter W;
  std::string Out(LedgerMagic, 8);
  W.u32(LedgerVersion);
  W.u64(fnv1a64(Body.data(), Body.size()));
  Out += W.take();
  Out += Body;
  return Out;
}

bool unframeLedger(const std::string &Bytes, std::string &BodyOut) {
  if (Bytes.size() < HeaderBytes ||
      std::memcmp(Bytes.data(), LedgerMagic, 8) != 0)
    return false;
  BinaryReader R(Bytes.data() + 8, HeaderBytes - 8);
  uint32_t Version;
  uint64_t Sum;
  if (!R.u32(Version) || !R.u64(Sum) || Version != LedgerVersion)
    return false;
  BodyOut = Bytes.substr(HeaderBytes);
  return fnv1a64(BodyOut.data(), BodyOut.size()) == Sum;
}

std::string serializeState(const TaskLedger::Config &Cfg,
                           const std::vector<TaskLedger::Task> &Tasks) {
  BinaryWriter W;
  W.u64(Cfg.BatchFingerprint);
  W.u32(Cfg.TaskCount);
  W.u32(Cfg.LeaseTtlMs);
  W.u32(Cfg.MaxAttempts);
  W.u32(Cfg.BackoffBaseMs);
  for (const TaskLedger::Task &T : Tasks) {
    W.u8(static_cast<uint8_t>(T.State));
    W.u32(T.Attempts);
    W.u64(T.Owner);
    W.u64(T.LeaseExpiryMs);
    W.u64(T.NotBeforeMs);
    W.str(T.Key);
    W.str(T.LastFailure);
    W.str(T.Diag);
  }
  return frameLedger(W.take());
}

bool parseState(const std::string &Bytes, TaskLedger::Config &Cfg,
                std::vector<TaskLedger::Task> &Tasks) {
  std::string Body;
  if (!unframeLedger(Bytes, Body))
    return false;
  BinaryReader R(Body);
  if (!R.u64(Cfg.BatchFingerprint) || !R.u32(Cfg.TaskCount) ||
      !R.u32(Cfg.LeaseTtlMs) || !R.u32(Cfg.MaxAttempts) ||
      !R.u32(Cfg.BackoffBaseMs) ||
      !R.fits(Cfg.TaskCount, 1 + 4 + 8 + 8 + 8 + 4 + 4 + 4))
    return false;
  Tasks.clear();
  Tasks.resize(Cfg.TaskCount);
  for (TaskLedger::Task &T : Tasks) {
    uint8_t State;
    if (!R.u8(State) || State > 3 || !R.u32(T.Attempts) ||
        !R.u64(T.Owner) || !R.u64(T.LeaseExpiryMs) ||
        !R.u64(T.NotBeforeMs) || !R.str(T.Key) || !R.str(T.LastFailure) ||
        !R.str(T.Diag))
      return false;
    T.State = static_cast<TaskLedger::TaskState>(State);
  }
  return R.atEnd();
}

#ifdef CSC_LEDGER_POSIX

/// Advisory exclusive lock for ledger read-modify-write cycles. Lock
/// failure degrades to lock-free best effort — writes stay atomic via
/// rename, so the worst case is a lost update, i.e. a retried task.
class ScopedLedgerLock {
public:
  explicit ScopedLedgerLock(const std::string &Path) {
    Fd = ::open(Path.c_str(), O_RDWR | O_CREAT, 0644);
    if (Fd >= 0 && ::flock(Fd, LOCK_EX) != 0) {
      ::close(Fd);
      Fd = -1;
    }
  }
  ~ScopedLedgerLock() {
    if (Fd >= 0) {
      ::flock(Fd, LOCK_UN);
      ::close(Fd);
    }
  }
  ScopedLedgerLock(const ScopedLedgerLock &) = delete;
  ScopedLedgerLock &operator=(const ScopedLedgerLock &) = delete;

private:
  int Fd = -1;
};

#endif // CSC_LEDGER_POSIX

/// The quarantine diagnostic pinned onto a task when its attempts run
/// out; docs/CLI.md promises this wording.
std::string quarantineDiag(const TaskLedger::Task &T,
                           const TaskLedger::Config &Cfg) {
  std::string Cause =
      T.LastFailure.empty() ? "lease expired un-renewed" : T.LastFailure;
  char Buf[64];
  std::snprintf(Buf, sizeof(Buf), "failed %u of %u attempts",
                T.Attempts, Cfg.MaxAttempts);
  return std::string(Buf) + "; last worker " + std::to_string(T.Owner) +
         ": " + Cause;
}

} // namespace

TaskLedger::TaskLedger(Options O) : Opts(std::move(O)) {}

uint64_t TaskLedger::nowMs() const {
  if (Opts.NowMs)
    return Opts.NowMs();
  using namespace std::chrono;
  return static_cast<uint64_t>(
      duration_cast<milliseconds>(system_clock::now().time_since_epoch())
          .count());
}

bool TaskLedger::loadLocked(State &S) const {
  std::string Bytes;
  if (!readWholeFile(Opts.Path, Bytes) ||
      !parseState(Bytes, S.Cfg, S.Tasks))
    return false;
  return true;
}

bool TaskLedger::storeLocked(const State &S) const {
#ifdef CSC_LEDGER_POSIX
  if (Opts.TestFailWrites)
    return false;
  std::string Bytes = serializeState(S.Cfg, S.Tasks);
  // pid alone is not unique enough: two handles in one process (or the
  // result store's own .tmp-<pid>-<seq> writers sharing the directory)
  // must never clobber each other's temp file mid-write. A process-wide
  // counter plus a ledger-specific prefix uniquifies both.
  static std::atomic<uint64_t> TempSeq{0};
  char Temp[64];
  std::snprintf(Temp, sizeof(Temp), ".ledger-tmp-%ld-%llu",
                static_cast<long>(::getpid()),
                static_cast<unsigned long long>(++TempSeq));
  size_t Slash = Opts.Path.rfind('/');
  std::string TempPath =
      (Slash == std::string::npos ? std::string()
                                  : Opts.Path.substr(0, Slash + 1)) +
      Temp;
  {
    std::ofstream OutF(TempPath, std::ios::binary | std::ios::trunc);
    OutF.write(Bytes.data(), static_cast<std::streamsize>(Bytes.size()));
    OutF.flush();
    if (!OutF.good()) {
      std::remove(TempPath.c_str());
      return false;
    }
  }
  if (std::rename(TempPath.c_str(), Opts.Path.c_str()) != 0) {
    std::remove(TempPath.c_str());
    return false;
  }
  return true;
#else
  (void)S;
  return false;
#endif
}

bool TaskLedger::create(const Config &C) {
  std::lock_guard<std::mutex> G(M);
#ifdef CSC_LEDGER_POSIX
  ScopedLedgerLock Lock(Opts.Path + ".lock");
#endif
  State S;
  S.Cfg = C;
  S.Tasks.assign(C.TaskCount, Task());
  if (!storeLocked(S)) {
    ++Stats.IoFailures;
    return false;
  }
  return true;
}

bool TaskLedger::config(Config &Out, uint64_t ExpectFingerprint) {
  std::lock_guard<std::mutex> G(M);
  State S;
  if (!loadLocked(S)) {
    ++Stats.IoFailures;
    return false;
  }
  if (ExpectFingerprint && S.Cfg.BatchFingerprint != ExpectFingerprint)
    return false;
  Out = S.Cfg;
  return true;
}

bool TaskLedger::reapExpiredLocked(State &S, uint64_t Now) {
  bool Changed = false;
  for (Task &T : S.Tasks) {
    if (T.State != TaskState::Leased || T.LeaseExpiryMs > Now)
      continue;
    Changed = true;
    if (T.Attempts >= S.Cfg.MaxAttempts) {
      T.State = TaskState::Quarantined;
      T.Diag = quarantineDiag(T, S.Cfg);
      ++Stats.Quarantines;
    } else {
      // Exponential backoff on retries: a task that just lost its
      // worker waits base << (attempt - 1) ms before it is runnable
      // again, so a sick host cannot monopolize the fleet's time.
      uint64_t Shift = T.Attempts > 0 ? T.Attempts - 1 : 0;
      uint64_t Backoff = static_cast<uint64_t>(S.Cfg.BackoffBaseMs)
                         << (Shift > 10 ? 10 : Shift);
      T.State = TaskState::Pending;
      T.NotBeforeMs = Now + Backoff;
      ++Stats.Reclaims;
    }
  }
  return Changed;
}

TaskLedger::AcquireStatus TaskLedger::acquire(uint64_t Worker, Lease &Out,
                                              uint64_t &RetryInMs) {
  std::lock_guard<std::mutex> G(M);
#ifdef CSC_LEDGER_POSIX
  ScopedLedgerLock Lock(Opts.Path + ".lock");
#endif
  State S;
  if (!loadLocked(S)) {
    ++Stats.IoFailures;
    return AcquireStatus::Error;
  }
  uint64_t Now = nowMs();
  bool Changed = reapExpiredLocked(S, Now);

  // Lowest runnable task wins — deterministic under any worker order.
  uint32_t Pick = S.Cfg.TaskCount;
  uint64_t NearestMs = ~0ULL;
  for (uint32_t I = 0; I != S.Tasks.size(); ++I) {
    Task &T = S.Tasks[I];
    if (T.State == TaskState::Pending) {
      if (T.NotBeforeMs <= Now) {
        Pick = I;
        break;
      }
      NearestMs = std::min(NearestMs, T.NotBeforeMs - Now);
    } else if (T.State == TaskState::Leased) {
      NearestMs =
          std::min(NearestMs, T.LeaseExpiryMs > Now
                                  ? T.LeaseExpiryMs - Now
                                  : 1);
    }
  }

  if (Pick == S.Cfg.TaskCount) {
    if (Changed && !storeLocked(S)) {
      ++Stats.IoFailures;
      return AcquireStatus::Error;
    }
    if (NearestMs == ~0ULL)
      return AcquireStatus::Drained;
    RetryInMs = NearestMs < 1 ? 1 : NearestMs;
    return AcquireStatus::Retry;
  }

  Task &T = S.Tasks[Pick];
  T.State = TaskState::Leased;
  T.Owner = Worker;
  T.Attempts += 1;
  T.LeaseExpiryMs = Now + S.Cfg.LeaseTtlMs;
  T.NotBeforeMs = 0;
  if (!storeLocked(S)) {
    ++Stats.IoFailures;
    return AcquireStatus::Error;
  }
  ++Stats.Acquires;
  Out.Task = Pick;
  Out.Attempt = T.Attempts;
  return AcquireStatus::Acquired;
}

bool TaskLedger::renew(const Lease &L, uint64_t Worker) {
  std::lock_guard<std::mutex> G(M);
#ifdef CSC_LEDGER_POSIX
  ScopedLedgerLock Lock(Opts.Path + ".lock");
#endif
  State S;
  if (!loadLocked(S) || L.Task >= S.Tasks.size()) {
    ++Stats.IoFailures;
    return false;
  }
  Task &T = S.Tasks[L.Task];
  // The lease must still be this worker's *same* attempt: after a
  // reclaim (even one leased back to the same worker id) the heartbeat
  // belongs to a dead run and must not extend the new lease.
  if (T.State != TaskState::Leased || T.Owner != Worker ||
      T.Attempts != L.Attempt)
    return false;
  T.LeaseExpiryMs = nowMs() + S.Cfg.LeaseTtlMs;
  if (!storeLocked(S)) {
    ++Stats.IoFailures;
    return false;
  }
  ++Stats.Renews;
  return true;
}

bool TaskLedger::complete(const Lease &L, uint64_t Worker,
                          const std::string &Key) {
  std::lock_guard<std::mutex> G(M);
#ifdef CSC_LEDGER_POSIX
  ScopedLedgerLock Lock(Opts.Path + ".lock");
#endif
  State S;
  if (!loadLocked(S) || L.Task >= S.Tasks.size()) {
    ++Stats.IoFailures;
    return false;
  }
  Task &T = S.Tasks[L.Task];
  if (T.State == TaskState::Done)
    return true; // someone (perhaps our revived self) already finished
  if (T.State != TaskState::Leased || T.Owner != Worker ||
      T.Attempts != L.Attempt)
    return false; // reclaimed; the new owner reports completion
  T.State = TaskState::Done;
  T.Key = Key;
  T.LeaseExpiryMs = 0;
  if (!storeLocked(S)) {
    ++Stats.IoFailures;
    return false;
  }
  ++Stats.Completes;
  return true;
}

bool TaskLedger::noteWorkerDeath(uint64_t Worker, const std::string &Cause) {
  std::lock_guard<std::mutex> G(M);
#ifdef CSC_LEDGER_POSIX
  ScopedLedgerLock Lock(Opts.Path + ".lock");
#endif
  State S;
  if (!loadLocked(S)) {
    ++Stats.IoFailures;
    return false;
  }
  uint64_t Now = nowMs();
  bool Changed = false;
  for (Task &T : S.Tasks) {
    if (T.State != TaskState::Leased || T.Owner != Worker)
      continue;
    T.LeaseExpiryMs = Now; // reclaimable immediately — no TTL wait
    T.LastFailure = Cause;
    Changed = true;
  }
  if (!Changed)
    return true;
  if (!storeLocked(S)) {
    ++Stats.IoFailures;
    return false;
  }
  return true;
}

bool TaskLedger::reclaimExpired() {
  std::lock_guard<std::mutex> G(M);
#ifdef CSC_LEDGER_POSIX
  ScopedLedgerLock Lock(Opts.Path + ".lock");
#endif
  State S;
  if (!loadLocked(S)) {
    ++Stats.IoFailures;
    return false;
  }
  if (!reapExpiredLocked(S, nowMs()))
    return true;
  if (!storeLocked(S)) {
    ++Stats.IoFailures;
    return false;
  }
  return true;
}

bool TaskLedger::summary(Summary &Out) {
  std::lock_guard<std::mutex> G(M);
  State S;
  if (!loadLocked(S)) {
    ++Stats.IoFailures;
    return false;
  }
  Out = Summary();
  Out.Total = S.Cfg.TaskCount;
  for (const Task &T : S.Tasks) {
    switch (T.State) {
    case TaskState::Pending:
      ++Out.Pending;
      break;
    case TaskState::Leased:
      ++Out.Leased;
      break;
    case TaskState::Done:
      ++Out.Done;
      break;
    case TaskState::Quarantined:
      ++Out.Quarantined;
      break;
    }
  }
  return true;
}

bool TaskLedger::snapshot(Config &CfgOut, std::vector<Task> &Out) {
  std::lock_guard<std::mutex> G(M);
  State S;
  if (!loadLocked(S)) {
    ++Stats.IoFailures;
    return false;
  }
  CfgOut = S.Cfg;
  Out = std::move(S.Tasks);
  return true;
}

std::vector<std::string> TaskLedger::pinnedKeys(const std::string &Path) {
  std::vector<std::string> Keys;
  std::string Bytes;
  TaskLedger::Config Cfg;
  std::vector<TaskLedger::Task> Tasks;
  if (!readWholeFile(Path, Bytes) || !parseState(Bytes, Cfg, Tasks))
    return Keys;
  for (const Task &T : Tasks)
    if (T.State == TaskState::Done && !T.Key.empty())
      Keys.push_back(T.Key);
  return Keys;
}

TaskLedger::Counters TaskLedger::counters() const {
  std::lock_guard<std::mutex> G(M);
  return Stats;
}
