//===- ResultStore.cpp - Persistent content-addressed result cache --------===//
//
// Part of the Cut-Shortcut pointer analysis reproduction.
//
//===----------------------------------------------------------------------===//

#include "store/ResultStore.h"

#include "client/AnalysisRegistry.h"
#include "store/TaskLedger.h"
#include "support/Hash.h"

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <set>
#include <sstream>
#include <vector>

#ifndef _WIN32
#include <dirent.h>
#include <fcntl.h>
#include <sys/file.h>
#include <sys/stat.h>
#include <unistd.h>
#define CSC_STORE_POSIX 1
#endif

using namespace csc;

//===----------------------------------------------------------------------===//
// Keys
//===----------------------------------------------------------------------===//

uint64_t csc::registryFingerprint(const AnalysisRegistry &R) {
  // list() is sorted by name, so the fingerprint is iteration-order
  // independent; NUL separators keep (name, description) unambiguous.
  uint64_t H = 1469598103934665603ULL;
  for (const auto &[Name, Desc] : R.list()) {
    H = fnv1a64(Name.data(), Name.size(), H);
    H = fnv1a64("\0", 1, H);
    H = fnv1a64(Desc.data(), Desc.size(), H);
    H = fnv1a64("\0", 1, H);
  }
  return H;
}

std::string csc::resultStoreKey(uint64_t ProgramFingerprint,
                                uint64_t WorkBudget, double TimeBudgetMs,
                                uint64_t RegistryFingerprint,
                                const std::string &CanonicalSpec) {
  // Same coverage as the batch executor's in-process key, with the
  // registry address replaced by its content fingerprint so the key
  // means the same thing in every process.
  char Buf[128];
  std::snprintf(Buf, sizeof(Buf), "p%016llx|w%llu|t%.17g|g%016llx|",
                static_cast<unsigned long long>(ProgramFingerprint),
                static_cast<unsigned long long>(WorkBudget), TimeBudgetMs,
                static_cast<unsigned long long>(RegistryFingerprint));
  return Buf + CanonicalSpec;
}

//===----------------------------------------------------------------------===//
// File plumbing
//===----------------------------------------------------------------------===//

namespace {

// Entry files: magic, format version, body checksum, body. The checksum
// covers the whole body (key framing + payload), so any flipped bit past
// the fixed header is caught; flips inside the header fail the magic /
// version / checksum comparison instead.
constexpr char EntryMagic[8] = {'C', 'S', 'C', 'P', 'T', 'A', 'R', '1'};
// X2 added the per-record access stamp for GC. An X1 index simply fails
// to parse, which the existing rebuild sweep self-repairs (stamping
// entries from their file mtimes) — no migration path needed.
constexpr char IndexMagic[8] = {'C', 'S', 'C', 'P', 'T', 'A', 'X', '2'};
constexpr uint32_t FormatVersion = 1;
constexpr size_t HeaderBytes = 8 + 4 + 8; // magic + version + checksum

bool readWholeFile(const std::string &Path, std::string &Out) {
  std::ifstream In(Path, std::ios::binary);
  if (!In)
    return false;
  std::ostringstream Buf;
  Buf << In.rdbuf();
  Out = Buf.str();
  return In.good() || In.eof();
}

std::string frame(const char (&Magic)[8], const std::string &Body) {
  BinaryWriter W;
  std::string Out(Magic, 8);
  W.u32(FormatVersion);
  W.u64(fnv1a64(Body.data(), Body.size()));
  Out += W.take();
  Out += Body;
  return Out;
}

/// Validates magic/version/checksum framing; on success \p BodyOut is
/// the checksummed body. False on any mismatch.
bool unframe(const std::string &Bytes, const char (&Magic)[8],
             std::string &BodyOut) {
  if (Bytes.size() < HeaderBytes ||
      std::memcmp(Bytes.data(), Magic, 8) != 0)
    return false;
  BinaryReader R(Bytes.data() + 8, HeaderBytes - 8);
  uint32_t Version;
  uint64_t Sum;
  if (!R.u32(Version) || !R.u64(Sum) || Version != FormatVersion)
    return false;
  BodyOut = Bytes.substr(HeaderBytes);
  return fnv1a64(BodyOut.data(), BodyOut.size()) == Sum;
}

std::string hex16(uint64_t V) {
  char Buf[24];
  std::snprintf(Buf, sizeof(Buf), "%016llx",
                static_cast<unsigned long long>(V));
  return Buf;
}

#ifdef CSC_STORE_POSIX

bool ensureDir(const std::string &Path, std::string &Err) {
  if (::mkdir(Path.c_str(), 0777) == 0 || errno == EEXIST) {
    struct stat St;
    if (::stat(Path.c_str(), &St) == 0 && S_ISDIR(St.st_mode))
      return true;
  }
  Err = "cannot create directory '" + Path + "': " + std::strerror(errno);
  return false;
}

/// Advisory exclusive lock on the store's lock file for index rewrites.
/// Lock failure degrades to lock-free best effort (index writes stay
/// atomic via rename either way) rather than blocking the analysis.
class ScopedFileLock {
public:
  explicit ScopedFileLock(const std::string &Path) {
    Fd = ::open(Path.c_str(), O_RDWR | O_CREAT, 0644);
    if (Fd >= 0 && ::flock(Fd, LOCK_EX) != 0) {
      ::close(Fd);
      Fd = -1;
    }
  }
  ~ScopedFileLock() {
    if (Fd >= 0) {
      ::flock(Fd, LOCK_UN);
      ::close(Fd);
    }
  }
  ScopedFileLock(const ScopedFileLock &) = delete;
  ScopedFileLock &operator=(const ScopedFileLock &) = delete;

private:
  int Fd = -1;
};

uint64_t fileMtimeMs(const std::string &Path) {
  struct stat St;
  if (::stat(Path.c_str(), &St) != 0)
    return 0;
  return static_cast<uint64_t>(St.st_mtime) * 1000ULL;
}

std::vector<std::string> listEntryFiles(const std::string &ObjectsDir) {
  std::vector<std::string> Files;
  DIR *D = ::opendir(ObjectsDir.c_str());
  if (!D)
    return Files;
  while (struct dirent *E = ::readdir(D)) {
    std::string Name = E->d_name;
    if (Name.size() > 5 && Name.compare(Name.size() - 5, 5, ".csce") == 0)
      Files.push_back(Name);
  }
  ::closedir(D);
  std::sort(Files.begin(), Files.end());
  return Files;
}

#endif // CSC_STORE_POSIX

} // namespace

//===----------------------------------------------------------------------===//
// ResultStore
//===----------------------------------------------------------------------===//

ResultStore::ResultStore(Options O) : Opts(std::move(O)) {
#ifdef CSC_STORE_POSIX
  if (Opts.Dir.empty()) {
    Err = "store directory is empty";
    return;
  }
  if (!ensureDir(Opts.Dir, Err) ||
      !ensureDir(Opts.Dir + "/objects", Err))
    return;
  std::lock_guard<std::mutex> G(M);
  loadIndexLocked();
  gcLocked(); // enforce the configured bounds against what we inherited
#else
  Err = "persistent result store requires a POSIX platform";
#endif
}

ResultStore::~ResultStore() {
  std::lock_guard<std::mutex> G(M);
  if (usable() && AccessDirty)
    flushAccessLocked();
}

bool ResultStore::usable() const { return Err.empty(); }

uint64_t ResultStore::nowMs() const {
  if (Opts.NowMs)
    return Opts.NowMs();
  using namespace std::chrono;
  return static_cast<uint64_t>(
      duration_cast<milliseconds>(system_clock::now().time_since_epoch())
          .count());
}

std::string ResultStore::objectPath(const std::string &Key) const {
  return Opts.Dir + "/objects/" +
         hex16(fnv1a64(Key.data(), Key.size())) + ".csce";
}

int ResultStore::readEntry(const std::string &Path,
                           const std::string &ExpectKey,
                           std::string &KeyOut, std::string &PayloadOut,
                           uint64_t &ChecksumOut) const {
  std::string Bytes;
  if (!readWholeFile(Path, Bytes))
    return 1; // absent/unreadable: a plain miss, nothing to repair
  std::string Body;
  if (!unframe(Bytes, EntryMagic, Body))
    return 2; // bad magic, version skew, truncation, or flipped bits
  BinaryReader R(Body);
  uint64_t PayloadLen;
  if (!R.str(KeyOut) || !R.u64(PayloadLen) || PayloadLen != R.remaining())
    return 2;
  if (!ExpectKey.empty() && KeyOut != ExpectKey)
    return 3; // valid entry for another key: hash collision, not damage
  PayloadOut = Body.substr(Body.size() - PayloadLen);
  ChecksumOut = fnv1a64(Body.data(), Body.size());
  return 0;
}

void ResultStore::evictLocked(const std::string &Path,
                              const std::string &Key) {
  if (Opts.Repair)
    std::remove(Path.c_str());
  if (!Key.empty())
    Index.erase(Key);
}

bool ResultStore::lookup(const std::string &Key, StoredResult &Out) {
  std::lock_guard<std::mutex> G(M);
  if (!usable() || Key.empty()) {
    ++Stats.Misses;
    return false;
  }
  std::string Path = objectPath(Key);
  std::string FileKey, Payload;
  uint64_t Sum = 0;
  int RC = readEntry(Path, Key, FileKey, Payload, Sum);
  if (RC == 0) {
    StoredResult Value;
    if (deserializeStoredResult(Payload, Value)) {
      ++Stats.Hits;
      // Stamp the access so GC's LRU order reflects use, not just
      // publish time. Stamps batch in memory and flush at destruction.
      auto It = Index.find(Key);
      if (It != Index.end()) {
        It->second.LastAccessMs = nowMs();
        AccessDirty = true;
      }
      Out = std::move(Value);
      return true;
    }
    RC = 2; // checksummed but undecodable: format skew within a version
  }
  if (RC == 2) {
    ++Stats.CorruptEvictions;
    evictLocked(Path, Key);
  }
  ++Stats.Misses;
  return false;
}

bool ResultStore::writeFileAtomic(const std::string &FinalPath,
                                  const std::string &Bytes) const {
#ifdef CSC_STORE_POSIX
  if (Opts.TestFailWrites)
    return false; // simulated ENOSPC: every write fails, nothing lands
  char Temp[64];
  std::snprintf(Temp, sizeof(Temp), ".tmp-%ld-%llu",
                static_cast<long>(::getpid()),
                static_cast<unsigned long long>(++TempSeq));
  size_t Slash = FinalPath.rfind('/');
  std::string TempPath = FinalPath.substr(0, Slash + 1) + Temp;
  {
    std::ofstream OutF(TempPath, std::ios::binary | std::ios::trunc);
    OutF.write(Bytes.data(), static_cast<std::streamsize>(Bytes.size()));
    OutF.flush();
    if (!OutF.good()) {
      std::remove(TempPath.c_str());
      return false;
    }
  }
  if (std::rename(TempPath.c_str(), FinalPath.c_str()) != 0) {
    std::remove(TempPath.c_str());
    return false;
  }
  return true;
#else
  (void)FinalPath;
  (void)Bytes;
  return false;
#endif
}

bool ResultStore::publish(const std::string &Key,
                          const StoredResult &Value) {
  std::lock_guard<std::mutex> G(M);
  if (!usable() || Key.empty()) {
    ++Stats.PublishFailures;
    return false;
  }
  std::string Payload = serializeStoredResult(Value);
  std::string Path = objectPath(Key);

  // An existing valid entry for this key holds identical bytes by
  // construction (the key fingerprints the inputs) — skip the rewrite.
  {
    std::string FileKey, Existing;
    uint64_t Sum = 0;
    if (readEntry(Path, Key, FileKey, Existing, Sum) == 0 &&
        Existing == Payload)
      return true;
  }

  BinaryWriter BodyW;
  BodyW.str(Key);
  BodyW.u64(Payload.size());
  std::string Body = BodyW.take() + Payload;
  std::string Bytes = frame(EntryMagic, Body);
  if (!writeFileAtomic(Path, Bytes)) {
    ++Stats.PublishFailures;
    return false;
  }
  ++Stats.Publishes;

  IndexRecord Rec;
  Rec.File = Path.substr(Path.rfind('/') + 1);
  Rec.Checksum = fnv1a64(Body.data(), Body.size());
  Rec.Bytes = Bytes.size();
  Rec.LastAccessMs = nowMs();
  Index[Key] = Rec;
  mergeIndexOnDiskLocked(Key, Rec);
  gcLocked(); // keep the byte budget enforced as the store grows
  return true;
}

//===----------------------------------------------------------------------===//
// Index
//===----------------------------------------------------------------------===//

bool ResultStore::parseIndexBytes(
    const std::string &Bytes, std::map<std::string, IndexRecord> &Out) const {
  std::string Body;
  if (!unframe(Bytes, IndexMagic, Body))
    return false;
  BinaryReader R(Body);
  uint32_t Count;
  if (!R.u32(Count) || !R.fits(Count, 4 + 4 + 8 + 8 + 8))
    return false;
  for (uint32_t I = 0; I != Count; ++I) {
    std::string Key;
    IndexRecord Rec;
    if (!R.str(Key) || !R.str(Rec.File) || !R.u64(Rec.Checksum) ||
        !R.u64(Rec.Bytes) || !R.u64(Rec.LastAccessMs))
      return false;
    Out.emplace(std::move(Key), std::move(Rec));
  }
  return R.atEnd();
}

std::string ResultStore::indexBytesLocked(
    const std::map<std::string, IndexRecord> &Records) const {
  BinaryWriter W;
  W.u32(static_cast<uint32_t>(Records.size()));
  for (const auto &[Key, Rec] : Records) {
    W.str(Key);
    W.str(Rec.File);
    W.u64(Rec.Checksum);
    W.u64(Rec.Bytes);
    W.u64(Rec.LastAccessMs);
  }
  return frame(IndexMagic, W.take());
}

bool ResultStore::writeIndexLocked() const {
  return writeFileAtomic(Opts.Dir + "/index.bin",
                         indexBytesLocked(Index));
}

void ResultStore::mergeIndexOnDiskLocked(const std::string &Key,
                                         const IndexRecord &Rec) {
#ifdef CSC_STORE_POSIX
  // Read-merge-write under the advisory lock so concurrent publishers
  // never drop each other's records. The disk copy wins for keys this
  // handle has not touched; our record wins for this key.
  ScopedFileLock Lock(Opts.Dir + "/store.lock");
  std::map<std::string, IndexRecord> Merged;
  std::string Bytes;
  if (readWholeFile(Opts.Dir + "/index.bin", Bytes))
    parseIndexBytes(Bytes, Merged); // invalid disk index: start from ours
  for (const auto &KV : Index)
    Merged.insert(KV); // insert(): existing disk records win
  Merged[Key] = Rec;
  writeFileAtomic(Opts.Dir + "/index.bin", indexBytesLocked(Merged));
#else
  (void)Key;
  (void)Rec;
#endif
}

bool ResultStore::loadIndexLocked() {
#ifdef CSC_STORE_POSIX
  std::string Bytes;
  bool HaveFile = readWholeFile(Opts.Dir + "/index.bin", Bytes);
  if (HaveFile) {
    std::map<std::string, IndexRecord> Parsed;
    if (parseIndexBytes(Bytes, Parsed)) {
      Index = std::move(Parsed);
      return true;
    }
  } else if (listEntryFiles(Opts.Dir + "/objects").empty()) {
    return true; // fresh (or fully empty) store: nothing to index
  }
  // Missing-with-entries or invalid: self-repair with a validation sweep
  // that re-derives the manifest from the entries themselves.
  ++Stats.IndexRebuilds;
  Index.clear();
  sweepLocked();
  return false;
#else
  return false;
#endif
}

ResultStore::ScrubReport ResultStore::sweepLocked() {
  ScrubReport Report;
#ifdef CSC_STORE_POSIX
  std::string ObjectsDir = Opts.Dir + "/objects";
  for (const std::string &File : listEntryFiles(ObjectsDir)) {
    std::string Path = ObjectsDir + "/" + File;
    std::string Key, Payload;
    uint64_t Sum = 0;
    int RC = readEntry(Path, "", Key, Payload, Sum);
    StoredResult Value;
    if (RC == 0 && deserializeStoredResult(Payload, Value)) {
      ++Report.Valid;
      std::string Bytes;
      readWholeFile(Path, Bytes);
      Report.Bytes += Bytes.size();
      IndexRecord Rec;
      Rec.File = File;
      Rec.Checksum = Sum;
      Rec.Bytes = Bytes.size();
      // A sweep has no access history (the index it would have lived in
      // is gone) — approximate with the file mtime so GC's LRU order
      // still prefers evicting genuinely old entries.
      Rec.LastAccessMs = fileMtimeMs(Path);
      Index[Key] = Rec;
    } else {
      ++Report.Corrupt;
      ++Stats.CorruptEvictions;
      evictLocked(Path, Key);
    }
  }
  ScopedFileLock Lock(Opts.Dir + "/store.lock");
  writeIndexLocked();
#endif
  return Report;
}

ResultStore::ScrubReport ResultStore::scrub() {
  std::lock_guard<std::mutex> G(M);
  if (!usable())
    return ScrubReport();
  Index.clear();
  return sweepLocked();
}

//===----------------------------------------------------------------------===//
// GC
//===----------------------------------------------------------------------===//

ResultStore::GcReport ResultStore::gcLocked() {
  GcReport Report;
#ifdef CSC_STORE_POSIX
  if (!usable() || (Opts.MaxBytes == 0 && Opts.MaxAgeMs == 0))
    return Report;

  // Entries a live ledger's completed-but-unconsumed tasks point at are
  // off limits: evicting one would force the coordinator to recompute
  // work the fleet already did (still correct, but the one thing the
  // lease protocol exists to avoid).
  std::set<std::string> Pinned;
  for (const std::string &K : TaskLedger::pinnedKeys(Opts.Dir + "/ledger.bin"))
    Pinned.insert(K);

  uint64_t Now = nowMs();
  uint64_t Total = 0;
  // (LastAccess, Key): oldest-first eviction order for the size pass.
  std::vector<std::pair<uint64_t, std::string>> ByAge;
  for (const auto &[Key, Rec] : Index) {
    Total += Rec.Bytes;
    ByAge.emplace_back(Rec.LastAccessMs, Key);
  }
  std::sort(ByAge.begin(), ByAge.end());

  std::vector<std::string> Evict;
  for (const auto &[Access, Key] : ByAge) {
    bool TooOld = Opts.MaxAgeMs != 0 && Access + Opts.MaxAgeMs < Now;
    bool OverBudget = Opts.MaxBytes != 0 && Total > Opts.MaxBytes;
    if (!TooOld && !OverBudget)
      break; // ByAge is oldest-first: nothing later qualifies either
    if (Pinned.count(Key)) {
      ++Report.Pinned;
      continue;
    }
    const IndexRecord &Rec = Index[Key];
    Total -= Rec.Bytes;
    Report.FreedBytes += Rec.Bytes;
    Evict.push_back(Key);
  }
  if (Evict.empty())
    return Report;

  for (const std::string &Key : Evict) {
    std::remove((Opts.Dir + "/objects/" + Index[Key].File).c_str());
    Index.erase(Key);
    ++Stats.GcEvictions;
    ++Report.Evicted;
  }

  // Deletions must propagate to the shared index — a plain merge would
  // resurrect the evicted keys from the disk copy. Under the lock: drop
  // them from the disk records, keep everything else disk-wins.
  ScopedFileLock Lock(Opts.Dir + "/store.lock");
  std::map<std::string, IndexRecord> Merged;
  std::string Bytes;
  bool DiskOk =
      readWholeFile(Opts.Dir + "/index.bin", Bytes) &&
      parseIndexBytes(Bytes, Merged);
  for (const std::string &Key : Evict)
    Merged.erase(Key);
  // Keys a readable disk index lacks were evicted by another handle:
  // re-inserting ours would resurrect records whose object files are
  // gone and over-count the next GC pass's total. Only repair the index
  // wholesale when there is no valid disk copy to defer to.
  for (const auto &KV : Index)
    if (!DiskOk || Merged.count(KV.first))
      Merged.insert(KV); // insert(): existing disk records win
  writeFileAtomic(Opts.Dir + "/index.bin", indexBytesLocked(Merged));
#endif
  return Report;
}

ResultStore::GcReport ResultStore::gc() {
  std::lock_guard<std::mutex> G(M);
  return gcLocked();
}

void ResultStore::flushAccessLocked() {
#ifdef CSC_STORE_POSIX
  // Max-merge our access stamps into the shared index: another handle
  // may have stamped the same keys later; never move a stamp backwards.
  ScopedFileLock Lock(Opts.Dir + "/store.lock");
  std::map<std::string, IndexRecord> Merged;
  std::string Bytes;
  bool DiskOk =
      readWholeFile(Opts.Dir + "/index.bin", Bytes) &&
      parseIndexBytes(Bytes, Merged);
  for (const auto &[Key, Rec] : Index) {
    auto It = Merged.find(Key);
    if (It == Merged.end()) {
      // Absent from a readable disk index means another handle GC'd the
      // entry; an access stamp must not resurrect it. Without a valid
      // disk copy, fall back to repairing from our records.
      if (!DiskOk)
        Merged[Key] = Rec;
    } else if (It->second.LastAccessMs < Rec.LastAccessMs)
      It->second.LastAccessMs = Rec.LastAccessMs;
  }
  writeFileAtomic(Opts.Dir + "/index.bin", indexBytesLocked(Merged));
  AccessDirty = false;
#endif
}

ResultStore::Counters ResultStore::counters() const {
  std::lock_guard<std::mutex> G(M);
  return Stats;
}
