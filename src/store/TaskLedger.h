//===- TaskLedger.h - Crash-safe lease ledger for batch tasks ---*- C++ -*-===//
//
// Part of the Cut-Shortcut pointer analysis reproduction.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The coordination substrate of fault-tolerant multi-process batches: a
/// crash-safe on-disk ledger of (entry, spec) tasks that worker
/// processes *pull* by acquiring time-limited leases, replacing the
/// static `index % ShardCount` slicing that let one crashed worker
/// silently forfeit its whole slice.
///
/// The protocol, per task:
///
///  * acquire() leases the lowest-numbered runnable task to a worker
///    with a TTL; every lease increments the task's attempt counter.
///  * renew() is the mid-run heartbeat: a healthy worker extends its
///    lease long before expiry, so a long solve is never preempted.
///  * complete() marks the task done, recording the store key of the
///    published result (store GC pins those keys while the ledger is
///    live — the coordinator has not consumed them yet).
///  * A lease that expires un-renewed (its worker crashed, hung, or was
///    SIGSTOPped) is reclaimed by the next acquire(): the task returns
///    to the pending pool behind an exponential backoff, or — once its
///    attempts reach the configured maximum — is quarantined with a
///    pinned diagnostic instead of crash-looping the fleet forever.
///  * noteWorkerDeath() lets a supervisor that *observed* a worker die
///    expire its leases immediately (no TTL wait) and attach the death
///    cause, which the quarantine diagnostic preserves.
///
/// Durability discipline matches ResultStore: every mutation re-reads
/// the ledger file, applies the change, and atomically rewrites it
/// (temp + rename) under an advisory flock, so any number of workers on
/// any number of hosts sharing the directory stay coherent and a crash
/// mid-operation leaves the previous complete ledger behind. A ledger
/// that cannot be read or written degrades to the Error status — the
/// caller falls back to computing in-process; coordination failures may
/// cost parallelism, never correctness.
///
/// Thread-safety: one TaskLedger handle is fully thread-safe (internal
/// mutex); the on-disk state is additionally safe across handles and
/// processes via the flock.
///
//===----------------------------------------------------------------------===//

#ifndef CSC_STORE_TASKLEDGER_H
#define CSC_STORE_TASKLEDGER_H

#include <cstdint>
#include <functional>
#include <mutex>
#include <string>
#include <vector>

namespace csc {

class TaskLedger {
public:
  enum class TaskState : uint8_t {
    Pending = 0,     ///< Runnable (possibly behind a retry backoff).
    Leased = 1,      ///< Owned by a worker until the lease expires.
    Done = 2,        ///< Completed; Key names the published result.
    Quarantined = 3, ///< Exhausted its attempts; Diag says why.
  };

  struct Options {
    std::string Path; ///< Ledger file; the lock file is Path + ".lock".
    /// Clock in milliseconds (wall clock by default — lease expiries
    /// must mean the same thing to every process sharing the file).
    /// Tests inject a fake clock to step through expiry schedules.
    std::function<uint64_t()> NowMs;
    /// Fault injection: fail every write, as ENOSPC would. The ledger
    /// must degrade to Error statuses, never crash or corrupt.
    bool TestFailWrites = false;
  };

  /// Fleet-wide parameters, fixed at create() and embedded in the file
  /// so every participant agrees on them.
  struct Config {
    uint64_t BatchFingerprint = 0; ///< Manifest identity guard.
    uint32_t TaskCount = 0;
    uint32_t LeaseTtlMs = 5000;
    uint32_t MaxAttempts = 3;   ///< Quarantine after this many leases.
    uint32_t BackoffBaseMs = 50; ///< Reclaim backoff: base << (attempt-1).
  };

  struct Task {
    TaskState State = TaskState::Pending;
    uint32_t Attempts = 0;    ///< Leases granted so far.
    uint64_t Owner = 0;       ///< Current/last lease holder (worker id).
    uint64_t LeaseExpiryMs = 0;
    uint64_t NotBeforeMs = 0; ///< Retry backoff gate while Pending.
    std::string Key;          ///< Store key, recorded by complete().
    std::string LastFailure;  ///< Most recently observed failure cause.
    std::string Diag;         ///< Pinned quarantine diagnostic.
  };

  struct Summary {
    uint32_t Total = 0;
    uint32_t Pending = 0;
    uint32_t Leased = 0;
    uint32_t Done = 0;
    uint32_t Quarantined = 0;
    bool drained() const { return Done + Quarantined == Total; }
  };

  enum class AcquireStatus {
    Acquired, ///< \p Out holds the lease.
    Retry,    ///< Nothing runnable yet; try again in \p RetryInMs.
    Drained,  ///< Every task is Done or Quarantined.
    Error,    ///< Ledger unreadable/unwritable; fall back in-process.
  };

  struct Lease {
    uint32_t Task = 0;
    uint32_t Attempt = 0; ///< 1-based attempt this lease represents.
  };

  struct Counters {
    uint64_t Acquires = 0;
    uint64_t Renews = 0;
    uint64_t Completes = 0;
    uint64_t Reclaims = 0;    ///< Expired leases returned to Pending.
    uint64_t Quarantines = 0; ///< Tasks retired after MaxAttempts.
    uint64_t IoFailures = 0;  ///< Read/parse/write failures.
  };

  explicit TaskLedger(Options O);

  /// Creates (or resets) the ledger with Config::TaskCount pending
  /// tasks. False (counted) when the file cannot be written.
  bool create(const Config &C);

  /// Reads the embedded Config of an existing ledger. False when the
  /// file is absent/invalid or \p ExpectFingerprint (when nonzero) does
  /// not match — a worker handed a stale ledger must not run.
  bool config(Config &Out, uint64_t ExpectFingerprint = 0);

  /// Leases the next runnable task to \p Worker. Reclaims or
  /// quarantines every expired lease it encounters first, so liveness
  /// only needs one polling worker. On Retry, \p RetryInMs is the delay
  /// until the nearest backoff gate or lease expiry.
  AcquireStatus acquire(uint64_t Worker, Lease &Out, uint64_t &RetryInMs);

  /// Heartbeat: extends the lease by the configured TTL. False when the
  /// lease is no longer held (reclaimed after expiry) — the worker
  /// should abandon the task; the result it may still publish is
  /// harmless (identical bytes under the same store key).
  bool renew(const Lease &L, uint64_t Worker);

  /// Marks the leased task done, recording the store key its result was
  /// published under ("" when nothing was published, e.g. spec errors).
  /// False when the lease was reclaimed first; the task's eventual
  /// owner completes it instead.
  bool complete(const Lease &L, uint64_t Worker, const std::string &Key);

  /// Supervisor path: \p Worker was observed to die with \p Cause.
  /// Expires its leases immediately (no TTL wait) and records the cause
  /// so a later quarantine diagnostic can pin it.
  bool noteWorkerDeath(uint64_t Worker, const std::string &Cause);

  /// Reclaims/quarantines every expired lease without granting a new
  /// one — the supervisor's final accounting pass after the fleet died.
  bool reclaimExpired();

  bool summary(Summary &Out);
  bool snapshot(Config &CfgOut, std::vector<Task> &Out);

  /// Store keys recorded by a live ledger's completed tasks — the
  /// entries a coordinator has yet to consume, which store GC must not
  /// evict. Lock-free read (writes are atomic renames); empty when the
  /// file is absent or invalid.
  static std::vector<std::string> pinnedKeys(const std::string &Path);

  Counters counters() const;
  const Options &options() const { return Opts; }

private:
  struct State {
    Config Cfg;
    std::vector<Task> Tasks;
  };

  uint64_t nowMs() const;
  bool loadLocked(State &S) const;
  bool storeLocked(const State &S) const;
  /// Returns true when any expired lease was reclaimed or quarantined.
  bool reapExpiredLocked(State &S, uint64_t Now);

  Options Opts;
  mutable std::mutex M;
  Counters Stats;
};

} // namespace csc

#endif // CSC_STORE_TASKLEDGER_H
