//===- ResultCodec.cpp - Binary (de)serialization of analysis runs --------===//
//
// Part of the Cut-Shortcut pointer analysis reproduction.
//
//===----------------------------------------------------------------------===//

#include "store/ResultCodec.h"

#include <algorithm>

using namespace csc;

namespace {

/// A points-to set as u32 count + ascending ids (forEach iterates
/// ascending in both representations, so the encoding is canonical).
void writeSet(const PointsToSet &S, BinaryWriter &W) {
  W.u32(S.size());
  S.forEach([&](uint32_t O) { W.u32(O); });
}

bool readSet(BinaryReader &R, PointsToSet &Out) {
  uint32_t N;
  if (!R.u32(N) || !R.fits(N, 4))
    return false;
  for (uint32_t I = 0; I != N; ++I) {
    uint32_t O;
    if (!R.u32(O))
      return false;
    Out.insert(O);
  }
  return true;
}

bool setsEqual(const PointsToSet &A, const PointsToSet &B) {
  if (A.size() != B.size())
    return false;
  bool Equal = true;
  A.forEach([&](uint32_t O) { Equal = Equal && B.contains(O); });
  return Equal;
}

/// Sorted key snapshot of an unordered map — the canonical iteration
/// order every map-valued field is serialized in.
template <typename Map>
std::vector<typename Map::key_type> sortedKeys(const Map &M) {
  std::vector<typename Map::key_type> Keys;
  Keys.reserve(M.size());
  for (const auto &KV : M)
    Keys.push_back(KV.first);
  std::sort(Keys.begin(), Keys.end());
  return Keys;
}

bool readStatus(uint8_t Raw, RunStatus &Out) {
  switch (Raw) {
  case 0:
    Out = RunStatus::Completed;
    return true;
  case 1:
    Out = RunStatus::BudgetExhausted;
    return true;
  case 2:
    Out = RunStatus::SpecError;
    return true;
  default:
    return false;
  }
}

uint8_t statusByte(RunStatus S) {
  return S == RunStatus::Completed         ? 0
         : S == RunStatus::BudgetExhausted ? 1
                                           : 2;
}

} // namespace

void csc::serializePTAResult(const PTAResult &R, BinaryWriter &W) {
  W.u8(R.Exhausted ? 1 : 0);
  W.f64(R.TimeMs);

  const SolverStats &S = R.Stats;
  W.u64(S.PtsInsertions);
  W.u64(S.PFGEdges);
  W.u64(S.WorklistPops);
  W.u64(S.CallEdgesCS);
  W.u32(S.NumPtrs);
  W.u32(S.NumCSObjs);
  W.u32(S.NumContexts);
  W.u32(S.ReachableCS);
  W.u32(S.ReachableCI);
  W.u64(S.Scc.SccsFound);
  W.u64(S.Scc.MembersCollapsed);
  W.u64(S.Scc.OnlineCollapses);
  W.u64(S.Scc.FullPasses);
  W.u64(S.Scc.PropagationsSaved);

  W.u32(static_cast<uint32_t>(R.VarPts.size()));
  for (const PointsToSet &P : R.VarPts)
    writeSet(P, W);

  W.u32(static_cast<uint32_t>(R.FieldPts.size()));
  for (const auto &Key : sortedKeys(R.FieldPts)) {
    W.u32(Key.first);
    W.u32(Key.second);
    writeSet(R.FieldPts.at(Key), W);
  }

  W.u32(static_cast<uint32_t>(R.ArrayPts.size()));
  for (uint32_t Key : sortedKeys(R.ArrayPts)) {
    W.u32(Key);
    writeSet(R.ArrayPts.at(Key), W);
  }

  W.u32(static_cast<uint32_t>(R.StaticPts.size()));
  for (uint32_t Key : sortedKeys(R.StaticPts)) {
    W.u32(Key);
    writeSet(R.StaticPts.at(Key), W);
  }

  W.u32(static_cast<uint32_t>(R.CalleesPerSite.size()));
  for (const std::vector<MethodId> &Callees : R.CalleesPerSite) {
    W.u32(static_cast<uint32_t>(Callees.size()));
    for (MethodId M : Callees)
      W.u32(M);
  }

  std::vector<MethodId> Reach(R.Reachable.begin(), R.Reachable.end());
  std::sort(Reach.begin(), Reach.end());
  W.u32(static_cast<uint32_t>(Reach.size()));
  for (MethodId M : Reach)
    W.u32(M);

  W.u64(R.NumCallEdgesCI);
}

bool csc::deserializePTAResult(BinaryReader &R, PTAResult &Out) {
  uint8_t Exhausted;
  if (!R.u8(Exhausted) || Exhausted > 1 || !R.f64(Out.TimeMs))
    return false;
  Out.Exhausted = Exhausted != 0;

  SolverStats &S = Out.Stats;
  if (!R.u64(S.PtsInsertions) || !R.u64(S.PFGEdges) ||
      !R.u64(S.WorklistPops) || !R.u64(S.CallEdgesCS) ||
      !R.u32(S.NumPtrs) || !R.u32(S.NumCSObjs) || !R.u32(S.NumContexts) ||
      !R.u32(S.ReachableCS) || !R.u32(S.ReachableCI) ||
      !R.u64(S.Scc.SccsFound) || !R.u64(S.Scc.MembersCollapsed) ||
      !R.u64(S.Scc.OnlineCollapses) || !R.u64(S.Scc.FullPasses) ||
      !R.u64(S.Scc.PropagationsSaved))
    return false;

  uint32_t N;
  if (!R.u32(N) || !R.fits(N, 4)) // each set is >= 4 bytes (its count)
    return false;
  Out.VarPts.resize(N);
  for (uint32_t I = 0; I != N; ++I)
    if (!readSet(R, Out.VarPts[I]))
      return false;

  if (!R.u32(N) || !R.fits(N, 12))
    return false;
  Out.FieldPts.reserve(N);
  for (uint32_t I = 0; I != N; ++I) {
    uint32_t O, F;
    if (!R.u32(O) || !R.u32(F) || !readSet(R, Out.FieldPts[{O, F}]))
      return false;
  }

  if (!R.u32(N) || !R.fits(N, 8))
    return false;
  Out.ArrayPts.reserve(N);
  for (uint32_t I = 0; I != N; ++I) {
    uint32_t O;
    if (!R.u32(O) || !readSet(R, Out.ArrayPts[O]))
      return false;
  }

  if (!R.u32(N) || !R.fits(N, 8))
    return false;
  Out.StaticPts.reserve(N);
  for (uint32_t I = 0; I != N; ++I) {
    uint32_t F;
    if (!R.u32(F) || !readSet(R, Out.StaticPts[F]))
      return false;
  }

  if (!R.u32(N) || !R.fits(N, 4))
    return false;
  Out.CalleesPerSite.resize(N);
  for (uint32_t I = 0; I != N; ++I) {
    uint32_t K;
    if (!R.u32(K) || !R.fits(K, 4))
      return false;
    Out.CalleesPerSite[I].resize(K);
    for (uint32_t J = 0; J != K; ++J)
      if (!R.u32(Out.CalleesPerSite[I][J]))
        return false;
  }

  if (!R.u32(N) || !R.fits(N, 4))
    return false;
  Out.Reachable.reserve(N);
  for (uint32_t I = 0; I != N; ++I) {
    uint32_t M;
    if (!R.u32(M))
      return false;
    Out.Reachable.insert(M);
  }

  return R.u64(Out.NumCallEdgesCI);
}

bool csc::resultsEqual(const PTAResult &A, const PTAResult &B) {
  const SolverStats &SA = A.Stats, &SB = B.Stats;
  if (A.Exhausted != B.Exhausted || A.TimeMs != B.TimeMs ||
      SA.PtsInsertions != SB.PtsInsertions || SA.PFGEdges != SB.PFGEdges ||
      SA.WorklistPops != SB.WorklistPops ||
      SA.CallEdgesCS != SB.CallEdgesCS || SA.NumPtrs != SB.NumPtrs ||
      SA.NumCSObjs != SB.NumCSObjs || SA.NumContexts != SB.NumContexts ||
      SA.ReachableCS != SB.ReachableCS ||
      SA.ReachableCI != SB.ReachableCI ||
      SA.Scc.SccsFound != SB.Scc.SccsFound ||
      SA.Scc.MembersCollapsed != SB.Scc.MembersCollapsed ||
      SA.Scc.OnlineCollapses != SB.Scc.OnlineCollapses ||
      SA.Scc.FullPasses != SB.Scc.FullPasses ||
      SA.Scc.PropagationsSaved != SB.Scc.PropagationsSaved)
    return false;

  if (A.VarPts.size() != B.VarPts.size() ||
      A.FieldPts.size() != B.FieldPts.size() ||
      A.ArrayPts.size() != B.ArrayPts.size() ||
      A.StaticPts.size() != B.StaticPts.size() ||
      A.CalleesPerSite.size() != B.CalleesPerSite.size() ||
      A.Reachable.size() != B.Reachable.size() ||
      A.NumCallEdgesCI != B.NumCallEdgesCI)
    return false;

  for (size_t I = 0; I != A.VarPts.size(); ++I)
    if (!setsEqual(A.VarPts[I], B.VarPts[I]))
      return false;
  for (const auto &[Key, Set] : A.FieldPts) {
    auto It = B.FieldPts.find(Key);
    if (It == B.FieldPts.end() || !setsEqual(Set, It->second))
      return false;
  }
  for (const auto &[Key, Set] : A.ArrayPts) {
    auto It = B.ArrayPts.find(Key);
    if (It == B.ArrayPts.end() || !setsEqual(Set, It->second))
      return false;
  }
  for (const auto &[Key, Set] : A.StaticPts) {
    auto It = B.StaticPts.find(Key);
    if (It == B.StaticPts.end() || !setsEqual(Set, It->second))
      return false;
  }
  for (size_t I = 0; I != A.CalleesPerSite.size(); ++I)
    if (A.CalleesPerSite[I] != B.CalleesPerSite[I])
      return false;
  for (MethodId M : A.Reachable)
    if (!B.Reachable.count(M))
      return false;
  return true;
}

std::string csc::serializeStoredResult(const StoredResult &S) {
  BinaryWriter W;
  W.u8(statusByte(S.Status));
  W.str(S.Error);
  W.u32(S.Metrics.FailCasts);
  W.u32(S.Metrics.ReachMethods);
  W.u32(S.Metrics.PolyCalls);
  W.u64(S.Metrics.CallEdges);
  W.str(S.RunJson);
  W.u32(S.SelectedMethods);
  W.u64(S.CutStores);
  W.u64(S.CutReturns);
  W.u64(S.ShortcutEdges);
  W.u32(static_cast<uint32_t>(S.InvolvedMethods.size()));
  for (MethodId M : S.InvolvedMethods)
    W.u32(M);
  serializePTAResult(S.Result, W);
  return W.take();
}

bool csc::deserializeStoredResult(const std::string &Bytes,
                                  StoredResult &Out) {
  BinaryReader R(Bytes);
  uint8_t Status;
  if (!R.u8(Status) || !readStatus(Status, Out.Status) ||
      !R.str(Out.Error) || !R.u32(Out.Metrics.FailCasts) ||
      !R.u32(Out.Metrics.ReachMethods) || !R.u32(Out.Metrics.PolyCalls) ||
      !R.u64(Out.Metrics.CallEdges) || !R.str(Out.RunJson) ||
      !R.u32(Out.SelectedMethods) || !R.u64(Out.CutStores) ||
      !R.u64(Out.CutReturns) || !R.u64(Out.ShortcutEdges))
    return false;
  uint32_t N;
  if (!R.u32(N) || !R.fits(N, 4))
    return false;
  Out.InvolvedMethods.resize(N);
  for (uint32_t I = 0; I != N; ++I)
    if (!R.u32(Out.InvolvedMethods[I]))
      return false;
  // The result must consume the rest of the value exactly — trailing
  // bytes mean a framing bug or format skew, either way not this entry.
  return deserializePTAResult(R, Out.Result) && R.atEnd();
}

StoredResult csc::storedFromRun(const AnalysisRun &Run,
                                std::string RunJson) {
  StoredResult S;
  S.Status = Run.Status;
  S.Error = Run.Error;
  S.Metrics = Run.Metrics;
  S.RunJson = std::move(RunJson);
  S.SelectedMethods = Run.SelectedMethods;
  S.CutStores = Run.Csc.CutStores;
  S.CutReturns = Run.Csc.CutReturns;
  S.ShortcutEdges = Run.Csc.ShortcutEdges;
  S.InvolvedMethods.assign(Run.Csc.Involved.begin(),
                           Run.Csc.Involved.end());
  std::sort(S.InvolvedMethods.begin(), S.InvolvedMethods.end());
  S.Result = Run.Result;
  return S;
}

AnalysisRun csc::runFromStored(const StoredResult &S) {
  AnalysisRun Run;
  Run.Status = S.Status;
  Run.Error = S.Error;
  Run.Metrics = S.Metrics;
  Run.SelectedMethods = S.SelectedMethods;
  Run.Csc.CutStores = S.CutStores;
  Run.Csc.CutReturns = S.CutReturns;
  Run.Csc.ShortcutEdges = S.ShortcutEdges;
  Run.Csc.Involved.insert(S.InvolvedMethods.begin(),
                          S.InvolvedMethods.end());
  Run.Result = S.Result;
  return Run;
}
