//===- demand_queries.cpp - Cold demand query vs whole-program solve ------===//
//
// Part of the Cut-Shortcut pointer analysis reproduction.
//
// The analysis server's demand path promises that a cold points-to query
// costs a backward-slice fixpoint, not a whole-program one. This bench
// measures that on the scalingSuite() workload tiers: for each (tier,
// spec) it runs the whole-program solve and a cold demand solve for a
// handful of entry-method roots, and prints solver work (PtsInsertions)
// and slice size side by side.
//
// This is also the acceptance gate for the demand path: the bench exits
// with status 3 if on any tier the demand solve fails to complete, the
// slice is not a proper subset of the program, or — where the full solve
// completed — the demand solve did not do strictly less work. On the
// large tiers the whole-program solve may exhaust the emulated budget
// while the demand query still answers: that asymmetry is the point.
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

#include "client/AnalysisRegistry.h"
#include "server/DemandSlicer.h"
#include "server/IncrementalSolver.h"

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

using namespace csc;
using namespace csc::bench;

namespace {

void usage(const char *Prog) {
  std::fprintf(stderr, "usage: %s [--json <path>] [--tiers <n>]\n", Prog);
  std::exit(2);
}

/// Query roots: the last few locals of the entry method — the most
/// downstream values, i.e. the expensive end of the backward slice.
std::vector<VarId> entryRoots(const Program &P, size_t Count) {
  const std::vector<VarId> &Vars = P.method(P.entry()).Vars;
  size_t N = Vars.size() < Count ? Vars.size() : Count;
  return std::vector<VarId>(Vars.end() - static_cast<long>(N), Vars.end());
}

AnalysisRecipe recipeFor(const std::string &Spec) {
  AnalysisRecipe R;
  std::string Error;
  if (!AnalysisRegistry::global().build(Spec, R, Error)) {
    std::fprintf(stderr, "bench spec error: %s\n", Error.c_str());
    std::exit(1);
  }
  return R;
}

std::string fmtResult(const PTAResult &R) {
  if (R.Exhausted)
    return ">budget";
  char Buf[32];
  std::snprintf(Buf, sizeof(Buf), "%llu",
                static_cast<unsigned long long>(R.Stats.PtsInsertions));
  return Buf;
}

} // namespace

int main(int Argc, char **Argv) {
  std::string JsonPath;
  size_t MaxTiers = ~static_cast<size_t>(0);
  for (int I = 1; I < Argc; ++I) {
    std::string Arg = Argv[I];
    if (Arg == "--json" && I + 1 < Argc)
      JsonPath = Argv[++I];
    else if (Arg.rfind("--json=", 0) == 0)
      JsonPath = Arg.substr(7);
    else if (Arg == "--tiers" && I + 1 < Argc)
      MaxTiers = static_cast<size_t>(std::atoi(Argv[++I]));
    else if (Arg.rfind("--tiers=", 0) == 0)
      MaxTiers = static_cast<size_t>(std::atoi(Arg.c_str() + 8));
    else
      usage(Argv[0]);
  }

  BenchJson J("demand_queries", JsonPath);
  std::printf("Cold demand queries vs whole-program solve "
              "(PtsInsertions; budget %.0f ms per solve)\n",
              budgetMs());
  std::printf("%-10s %8s %6s  %12s %12s %12s %6s\n", "tier", "stmts",
              "spec", "full-work", "demand-work", "slice-stmts", "ok");

  bool GateFailed = false;
  size_t Tier = 0;
  for (const WorkloadConfig &C : scalingSuite()) {
    if (Tier >= MaxTiers)
      break;
    std::vector<std::string> Diags;
    auto P = buildWorkloadProgram(C, Diags);
    if (!P) {
      for (const std::string &D : Diags)
        std::fprintf(stderr, "%s\n", D.c_str());
      return 1;
    }
    uint32_t Stmts = P->numStmts();
    std::vector<VarId> Roots = entryRoots(*P, 3);
    DemandSlicer Slicer(*P);
    DemandSlicer::Slice Slice = Slicer.sliceFor(Roots);

    for (const char *Spec : {"ci", "2obj"}) {
      AnalysisRecipe R = recipeFor(Spec);
      IncrementalSolver::Options Opts;
      Opts.TimeBudgetMs = budgetMs();
      IncrementalSolver Full(*P, R, Opts);
      const PTAResult &FullR = Full.ensureCurrent();
      IncrementalSolver Demand(*P, R, Opts);
      PTAResult DemandR = Demand.demandSolve(Slice.Enabled);

      bool Ok = !DemandR.Exhausted && Slice.EnabledStmts < Stmts;
      if (!FullR.Exhausted &&
          DemandR.Stats.PtsInsertions >= FullR.Stats.PtsInsertions)
        Ok = false;
      if (!Ok)
        GateFailed = true;

      char SliceBuf[32];
      std::snprintf(SliceBuf, sizeof(SliceBuf), "%u/%u",
                    Slice.EnabledStmts, Stmts);
      std::printf("%-10s %8u %6s  %12s %12s %12s %6s\n", C.Name.c_str(),
                  Stmts, Spec, fmtResult(FullR).c_str(),
                  fmtResult(DemandR).c_str(), SliceBuf,
                  Ok ? "yes" : "NO");
      J.custom(C.Name, std::string("demand:") + Spec,
               {{"total_stmts", static_cast<double>(Stmts)},
                {"enabled_stmts", static_cast<double>(Slice.EnabledStmts)},
                {"relevant_vars", static_cast<double>(Slice.RelevantVars)},
                {"full_completed", FullR.Exhausted ? 0.0 : 1.0},
                {"full_insertions",
                 static_cast<double>(FullR.Stats.PtsInsertions)},
                {"demand_completed", DemandR.Exhausted ? 0.0 : 1.0},
                {"demand_insertions",
                 static_cast<double>(DemandR.Stats.PtsInsertions)},
                {"full_ms", FullR.TimeMs},
                {"demand_ms", DemandR.TimeMs}});
    }
    ++Tier;
  }

  if (!J.write())
    return 1;
  if (GateFailed) {
    std::fprintf(stderr, "error: demand query was not slice-bounded on "
                         "some tier (see rows marked NO)\n");
    return 3;
  }
  return 0;
}
