//===- calibrate.cpp - Workload calibration probe -------------------------===//
//
// Part of the Cut-Shortcut pointer analysis reproduction.
//
// Not a paper table: prints raw sizes/times/work for each profile and
// analysis so workload parameters can be tuned. Kept in-tree because it is
// the tool we used to fit the suite to the paper's qualitative shape.
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

#include <cstdio>

using namespace csc;
using namespace csc::bench;

int main(int Argc, char **Argv) {
  BenchOptions Opts = parseBenchOptions(Argc, Argv);
  BenchJson J("calibrate", Opts.JsonPath);
  bool Doop = std::getenv("CSC_CALIBRATE_DOOP") != nullptr;
  std::printf("mode: %s\n", Doop ? "doop (full re-propagation)" : "tai-e");
  std::printf("%-10s %8s %8s | %10s %12s\n", "program", "methods", "stmts",
              "analysis", "time/work");
  for (BenchProgram &BP : buildSuite()) {
    const Program &P = BP.program();
    std::printf("%-10s %8u %8u\n", BP.Name.c_str(), P.numMethods(),
                P.numStmts());
    for (const char *Spec : {"ci", "csc", "zipper-e", "2type", "2obj"}) {
      AnalysisRun O = runWithBudget(*BP.S, Spec, Doop);
      J.record(BP.Name, O);
      std::printf("%-10s %8s %8s | %10s %8.0fms work=%llu%s\n", "", "", "",
                  Spec, O.Timings.TotalMs,
                  static_cast<unsigned long long>(
                      O.Result.Stats.PtsInsertions),
                  O.completed() ? "" : " EXHAUSTED");
    }
  }
  return J.write() ? 0 : 1;
}
