//===- fig12_analysis_time.cpp - Figure 12 --------------------------------===//
//
// Part of the Cut-Shortcut pointer analysis reproduction.
//
// Regenerates Figure 12: analysis time of CSC, CI, Zipper-e, 2type and
// 2obj on the ten programs, on the Doop-style engine. The paper plots a
// bar chart; we print the underlying series (seconds, ">budget" for runs
// exceeding the emulated 2-hour limit).
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

#include <cstdio>

using namespace csc;
using namespace csc::bench;

int main(int Argc, char **Argv) {
  BenchOptions Opts = parseBenchOptions(Argc, Argv);
  BenchJson J("fig12_analysis_time", Opts.JsonPath);
  std::printf("Figure 12: analysis time in seconds (Doop engine emulation; "
              "budget %.0f ms, engine factor %.0fx)\n",
              budgetMs(), doopEngineFactor());
  std::printf("%-10s %10s %10s %10s %10s %10s\n", "program", "CSC", "CI",
              "Zipper-e", "2type", "2obj");
  const char *Specs[] = {"csc", "ci", "zipper-e", "2type", "2obj"};
  for (BenchProgram &BP : buildSuite()) {
    std::printf("%-10s", BP.Name.c_str());
    for (const char *Spec : Specs) {
      AnalysisRun O = runWithBudget(*BP.S, Spec, /*DoopMode=*/true);
      J.record(BP.Name, O);
      std::printf(" %10s", fmtTime(O).c_str());
    }
    std::printf("\n");
  }
  std::printf("\nExpected shape (paper): CSC <= CI on most programs; "
              "Zipper-e slower than both; 2obj exceeds the budget "
              "everywhere; 2type only scales for eclipse/hsqldb/jedit/"
              "findbugs.\n");
  return J.write() ? 0 : 1;
}
