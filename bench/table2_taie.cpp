//===- table2_taie.cpp - Table 2 (Tai-e framework) ------------------------===//
//
// Part of the Cut-Shortcut pointer analysis reproduction.
//
// Regenerates Table 2: efficiency and precision of CI / 2obj / 2type /
// Zipper-e / CSC on the imperative Tai-e framework: incremental (delta)
// propagation and the full Cut-Shortcut plugin including load handling.
//
//===----------------------------------------------------------------------===//

#include "table_support.h"

using namespace csc::bench;

int main(int Argc, char **Argv) {
  BenchOptions Opts = parseBenchOptions(Argc, Argv);
  BenchJson J("table2_taie", Opts.JsonPath);
  printMetricsTable(
      "Table 2: efficiency and precision on the Tai-e-style engine", false,
      J);
  std::printf("Expected shape (paper): 2obj scales only for eclipse/jedit/"
              "findbugs (slowly); 2type additionally for hsqldb; Zipper-e "
              "scales everywhere but is slower than CSC; CSC runs at CI "
              "speed or faster with markedly better precision than CI.\n");
  return J.write() ? 0 : 1;
}
