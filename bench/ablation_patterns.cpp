//===- ablation_patterns.cpp - §5.1 per-pattern impact --------------------===//
//
// Part of the Cut-Shortcut pointer analysis reproduction.
//
// Regenerates the per-pattern ablation discussed in §5.1 (RQ1): enable
// exactly one pattern at a time (via registry spec parameters) and report
// which fraction of the total CI→CSC precision improvement each pattern
// contributes, per metric. The paper reports e.g. field/container/
// local-flow = 11.9%/75.8%/11.8% for #fail-cast and 53.2%/40.5%/2.0% for
// #reach-mtd on average; fractions need not sum to 100% (pattern
// interactions).
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

#include <cstdio>

using namespace csc;
using namespace csc::bench;

namespace {

double improvementPct(uint64_t CI, uint64_t Variant, uint64_t Full) {
  if (CI <= Full)
    return 0.0;
  double Total = static_cast<double>(CI - Full);
  double Part = static_cast<double>(CI > Variant ? CI - Variant : 0);
  return 100.0 * Part / Total;
}

} // namespace

int main(int Argc, char **Argv) {
  BenchOptions BO = parseBenchOptions(Argc, Argv);
  BenchJson J("ablation_patterns", BO.JsonPath);
  std::printf("Per-pattern precision impact (%% of the CI->CSC improvement "
              "recovered by each pattern alone)\n");
  std::printf("%-10s %-12s %12s %12s %12s %12s\n", "program", "pattern",
              "#fail-cast", "#reach-mtd", "#poly-call", "#call-edge");

  struct Variant {
    const char *Name;
    const char *Spec;
  };
  const Variant Variants[] = {
      {"field", "csc;container=0;local=0"},
      {"container", "csc;field=0;load=0;local=0"},
      {"local-flow", "csc;field=0;load=0;container=0"}};

  double Sum[3][4] = {};
  int Counted[3] = {};
  for (BenchProgram &BP : buildSuite()) {
    AnalysisRun CI = runWithBudget(*BP.S, "ci", /*DoopMode=*/false);
    AnalysisRun Full = runWithBudget(*BP.S, "csc", /*DoopMode=*/false);
    if (!CI.completed() || !Full.completed())
      continue;
    for (int V = 0; V != 3; ++V) {
      AnalysisRun O = runWithBudget(*BP.S, Variants[V].Spec,
                                    /*DoopMode=*/false);
      if (!O.completed()) {
        // An exhausted variant carries no metrics; reporting it would
        // inflate its improvement share past 100%.
        std::printf("%-10s %-12s %12s\n", BP.Name.c_str(),
                    Variants[V].Name, ">budget");
        continue;
      }
      ++Counted[V];
      double Pct[4] = {
          improvementPct(CI.Metrics.FailCasts, O.Metrics.FailCasts,
                         Full.Metrics.FailCasts),
          improvementPct(CI.Metrics.ReachMethods, O.Metrics.ReachMethods,
                         Full.Metrics.ReachMethods),
          improvementPct(CI.Metrics.PolyCalls, O.Metrics.PolyCalls,
                         Full.Metrics.PolyCalls),
          improvementPct(CI.Metrics.CallEdges, O.Metrics.CallEdges,
                         Full.Metrics.CallEdges),
      };
      for (int M = 0; M != 4; ++M)
        Sum[V][M] += Pct[M];
      J.custom(BP.Name, Variants[V].Name,
               {{"fail_cast_pct", Pct[0]},
                {"reach_mtd_pct", Pct[1]},
                {"poly_call_pct", Pct[2]},
                {"call_edge_pct", Pct[3]}});
      std::printf("%-10s %-12s %11.1f%% %11.1f%% %11.1f%% %11.1f%%\n",
                  BP.Name.c_str(), Variants[V].Name, Pct[0], Pct[1], Pct[2],
                  Pct[3]);
    }
    std::printf("\n");
  }
  for (int V = 0; V != 3; ++V) {
    if (V == 0)
      std::printf("-- per-variant averages --\n");
    if (Counted[V])
      std::printf("%-10s %-12s %11.1f%% %11.1f%% %11.1f%% %11.1f%% "
                  "(over %d programs)\n",
                  "average", Variants[V].Name, Sum[V][0] / Counted[V],
                  Sum[V][1] / Counted[V], Sum[V][2] / Counted[V],
                  Sum[V][3] / Counted[V], Counted[V]);
  }
  std::printf("\nExpected shape (paper, averages): the container pattern "
              "dominates #fail-cast; the field pattern dominates "
              "#reach-mtd; local flow contributes a small share.\n");
  return J.write() ? 0 : 1;
}
