//===- ablation_patterns.cpp - §5.1 per-pattern impact ---------------------===//
//
// Part of the Cut-Shortcut pointer analysis reproduction.
//
// Regenerates the per-pattern ablation discussed in §5.1 (RQ1): enable
// exactly one pattern at a time and report which fraction of the total
// CI→CSC precision improvement each pattern contributes, per metric. The
// paper reports e.g. field/container/local-flow = 11.9%/75.8%/11.8% for
// #fail-cast and 53.2%/40.5%/2.0% for #reach-mtd on average; fractions
// need not sum to 100% (pattern interactions).
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

#include <cstdio>

using namespace csc;
using namespace csc::bench;

namespace {

RunOutcome runVariant(const Program &P, CutShortcutOptions Opts) {
  RunConfig C;
  C.Kind = AnalysisKind::CSC;
  C.Csc = Opts;
  C.TimeBudgetMs = budgetMs();
  return runAnalysis(P, C);
}

double improvementPct(uint64_t CI, uint64_t Variant, uint64_t Full) {
  if (CI <= Full)
    return 0.0;
  double Total = static_cast<double>(CI - Full);
  double Part = static_cast<double>(CI > Variant ? CI - Variant : 0);
  return 100.0 * Part / Total;
}

} // namespace

int main() {
  std::printf("Per-pattern precision impact (%% of the CI->CSC improvement "
              "recovered by each pattern alone)\n");
  std::printf("%-10s %-12s %12s %12s %12s %12s\n", "program", "pattern",
              "#fail-cast", "#reach-mtd", "#poly-call", "#call-edge");

  struct Variant {
    const char *Name;
    CutShortcutOptions Opts;
  };
  CutShortcutOptions FieldOnly, ContainerOnly, LocalOnly;
  FieldOnly.Container = FieldOnly.LocalFlow = false;
  ContainerOnly.FieldStore = ContainerOnly.FieldLoad =
      ContainerOnly.LocalFlow = false;
  LocalOnly.FieldStore = LocalOnly.FieldLoad = LocalOnly.Container = false;
  const Variant Variants[] = {{"field", FieldOnly},
                              {"container", ContainerOnly},
                              {"local-flow", LocalOnly}};

  double Sum[3][4] = {};
  int Counted = 0;
  for (BenchProgram &BP : buildSuite()) {
    RunConfig CICfg;
    CICfg.TimeBudgetMs = budgetMs();
    RunOutcome CI = runAnalysis(*BP.P, CICfg);
    RunOutcome Full = runVariant(*BP.P, {});
    if (CI.Exhausted || Full.Exhausted)
      continue;
    ++Counted;
    for (int V = 0; V != 3; ++V) {
      RunOutcome O = runVariant(*BP.P, Variants[V].Opts);
      double Pct[4] = {
          improvementPct(CI.Metrics.FailCasts, O.Metrics.FailCasts,
                         Full.Metrics.FailCasts),
          improvementPct(CI.Metrics.ReachMethods, O.Metrics.ReachMethods,
                         Full.Metrics.ReachMethods),
          improvementPct(CI.Metrics.PolyCalls, O.Metrics.PolyCalls,
                         Full.Metrics.PolyCalls),
          improvementPct(CI.Metrics.CallEdges, O.Metrics.CallEdges,
                         Full.Metrics.CallEdges),
      };
      for (int M = 0; M != 4; ++M)
        Sum[V][M] += Pct[M];
      std::printf("%-10s %-12s %11.1f%% %11.1f%% %11.1f%% %11.1f%%\n",
                  BP.Name.c_str(), Variants[V].Name, Pct[0], Pct[1], Pct[2],
                  Pct[3]);
    }
    std::printf("\n");
  }
  if (Counted) {
    std::printf("-- averages over %d programs --\n", Counted);
    for (int V = 0; V != 3; ++V)
      std::printf("%-10s %-12s %11.1f%% %11.1f%% %11.1f%% %11.1f%%\n",
                  "average", Variants[V].Name, Sum[V][0] / Counted,
                  Sum[V][1] / Counted, Sum[V][2] / Counted,
                  Sum[V][3] / Counted);
  }
  std::printf("\nExpected shape (paper, averages): the container pattern "
              "dominates #fail-cast; the field pattern dominates "
              "#reach-mtd; local flow contributes a small share.\n");
  return 0;
}
