//===- table1_doop.cpp - Table 1 (Doop framework) -------------------------===//
//
// Part of the Cut-Shortcut pointer analysis reproduction.
//
// Regenerates Table 1: efficiency and precision of CI / 2obj / 2type /
// Zipper-e / CSC on the declarative Doop framework. Emulated here by the
// full re-propagation engine mode, the Doop engine-factor budget, and the
// Doop variant of Cut-Shortcut (no field-load handling — Datalog cannot
// express [CutPropLoad]'s negation-in-recursion).
//
//===----------------------------------------------------------------------===//

#include "table_support.h"

using namespace csc::bench;

int main(int Argc, char **Argv) {
  BenchOptions Opts = parseBenchOptions(Argc, Argv);
  BenchJson J("table1_doop", Opts.JsonPath);
  printMetricsTable(
      "Table 1: efficiency and precision on the Doop-style engine", true, J);
  std::printf("Expected shape (paper): 2obj exceeds the budget for all "
              "programs; 2type scales only for eclipse/hsqldb/jedit/"
              "findbugs; Zipper-e fails for soot and columba; CSC is the "
              "fastest analysis (faster than CI on most programs) with "
              "precision between Zipper-e and CI, best #fail-cast.\n");
  return J.write() ? 0 : 1;
}
