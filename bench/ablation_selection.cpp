//===- ablation_selection.cpp - §3.4's suggested combination --------------===//
//
// Part of the Cut-Shortcut pointer analysis reproduction.
//
// The paper's Limitations paragraph (§3.4) suggests combining the two
// worlds: methods whose PFG edges Cut-Shortcut does NOT manipulate could
// still be analyzed context-sensitively by a selective approach. This
// ablation explores selection strategies for a selective 2obj main
// analysis, expressed as custom AnalysisRecipes (the SelectOnly knob):
//   * zipper   — the Zipper-e selection (baseline),
//   * involved — the methods Cut-Shortcut's cut/shortcut edges involve
//                (a one-CSC-run heuristic),
//   * union    — Zipper-e selection plus CSC-involved methods.
// It reports time and #fail-cast for each, next to plain CSC.
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

#include <cstdio>

using namespace csc;
using namespace csc::bench;

namespace {

struct Cell {
  std::string Time;
  std::string FailCasts;
};

AnalysisRecipe selectiveRecipe(std::unordered_set<MethodId> Selected,
                               const char *Name) {
  AnalysisRecipe R;
  R.Name = Name;
  R.Kind = AnalysisKind::TwoObj;
  R.MakeSelector = [] { return std::make_unique<KObjSelector>(2); };
  R.SelectOnly = std::make_shared<const std::unordered_set<MethodId>>(
      std::move(Selected));
  return R;
}

Cell runSelective(AnalysisSession &S, std::unordered_set<MethodId> Selected,
                  const char *Name) {
  S.setTimeBudgetMs(budgetMs());
  AnalysisRun R = S.run(selectiveRecipe(std::move(Selected), Name));
  if (!R.completed())
    return {">budget", "-"};
  char Buf[32];
  std::snprintf(Buf, sizeof(Buf), "%.3f", R.Timings.TotalMs / 1000.0);
  return {Buf, std::to_string(R.Metrics.FailCasts)};
}

} // namespace

int main(int Argc, char **Argv) {
  BenchOptions BO = parseBenchOptions(Argc, Argv);
  BenchJson J("ablation_selection", BO.JsonPath);
  std::printf("Selection-strategy ablation for selective 2obj "
              "(time s / #fail-cast)\n");
  std::printf("%-10s %18s %18s %18s %18s\n", "program", "zipper-sel",
              "csc-involved-sel", "union-sel", "plain CSC");
  for (BenchProgram &BP : buildSuite()) {
    AnalysisSession &S = *BP.S;

    const ZipperSelection &ZSel = S.zipperSelection(ZipperOptions{});

    // One CSC run to obtain the involved-method set (and its own cell).
    AnalysisRun Csc = runWithBudget(S, "csc", /*DoopMode=*/false);
    char Buf[64];
    std::snprintf(Buf, sizeof(Buf), "%.3f/%u",
                  Csc.Timings.TotalMs / 1000.0, Csc.Metrics.FailCasts);
    std::string CscCell = Csc.completed() ? Buf : ">budget/-";

    std::unordered_set<MethodId> Involved = Csc.Csc.Involved;
    std::unordered_set<MethodId> Union = ZSel.Selected;
    Union.insert(Involved.begin(), Involved.end());

    Cell Z = runSelective(S, ZSel.Selected, "sel-2obj;zipper");
    Cell I = runSelective(S, std::move(Involved), "sel-2obj;involved");
    Cell U = runSelective(S, std::move(Union), "sel-2obj;union");
    auto Fmt = [](const Cell &C) { return C.Time + "/" + C.FailCasts; };
    // Record only completed CSC runs: an exhausted run's zeroed metrics
    // would be indistinguishable from a real measurement in the JSON.
    if (Csc.completed())
      J.custom(BP.Name, "selection",
               {{"csc_fail_casts",
                 static_cast<double>(Csc.Metrics.FailCasts)},
                {"csc_time_ms", Csc.Timings.TotalMs},
                {"zipper_selected",
                 static_cast<double>(ZSel.Selected.size())},
                {"involved", static_cast<double>(Csc.Csc.Involved.size())}});
    std::printf("%-10s %18s %18s %18s %18s\n", BP.Name.c_str(),
                Fmt(Z).c_str(), Fmt(I).c_str(), Fmt(U).c_str(),
                CscCell.c_str());
  }
  std::printf("\nObservation: the methods CSC's edges involve are NOT the "
              "methods contexts help most — selecting them performs "
              "clearly worse than Zipper-e's selection, corroborating the "
              "paper's Table 3 finding that the two method sets overlap "
              "only partially. And plain CSC beats every selective "
              "variant on both time and #fail-cast.\n");
  return J.write() ? 0 : 1;
}
