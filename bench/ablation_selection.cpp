//===- ablation_selection.cpp - §3.4's suggested combination ---------------===//
//
// Part of the Cut-Shortcut pointer analysis reproduction.
//
// The paper's Limitations paragraph (§3.4) suggests combining the two
// worlds: methods whose PFG edges Cut-Shortcut does NOT manipulate could
// still be analyzed context-sensitively by a selective approach. This
// ablation explores selection strategies for a selective 2obj main
// analysis:
//   * zipper   — the Zipper-e selection (baseline),
//   * involved — the methods Cut-Shortcut's cut/shortcut edges involve
//                (a one-CSC-run heuristic),
//   * union    — Zipper-e selection plus CSC-involved methods.
// It reports time and #fail-cast for each, next to plain CSC.
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

#include "csc/CutShortcutPlugin.h"
#include "pta/Solver.h"
#include "stdlib/ContainerSpec.h"
#include "support/Timer.h"
#include "zipper/Zipper.h"

#include <cstdio>

using namespace csc;
using namespace csc::bench;

namespace {

struct Cell {
  std::string Time;
  std::string FailCasts;
};

Cell runSelective(const Program &P,
                  const std::unordered_set<MethodId> &Selected) {
  KObjSelector Inner(2);
  SelectiveSelector Sel(Inner, Selected);
  SolverOptions Opts;
  Opts.Selector = &Sel;
  Opts.TimeBudgetMs = budgetMs();
  Timer T;
  Solver S(P, Opts);
  PTAResult R = S.solve();
  if (R.Exhausted)
    return {">budget", "-"};
  PrecisionMetrics M = computeMetrics(P, R);
  char Buf[32];
  std::snprintf(Buf, sizeof(Buf), "%.3f", T.elapsedMs() / 1000.0);
  return {Buf, std::to_string(M.FailCasts)};
}

} // namespace

int main() {
  std::printf("Selection-strategy ablation for selective 2obj "
              "(time s / #fail-cast)\n");
  std::printf("%-10s %18s %18s %18s %18s\n", "program", "zipper-sel",
              "csc-involved-sel", "union-sel", "plain CSC");
  for (BenchProgram &BP : buildSuite()) {
    const Program &P = *BP.P;

    ZipperSelection ZSel = runZipperSelection(P);

    // One CSC run to obtain the involved-method set (and its own cell).
    ContainerSpec Spec = ContainerSpec::forProgram(P);
    CutShortcutPlugin Plugin(P, Spec);
    SolverOptions CscOpts;
    CscOpts.TimeBudgetMs = budgetMs();
    Timer CscT;
    Solver CS(P, CscOpts);
    CS.addPlugin(&Plugin);
    PTAResult CR = CS.solve();
    char Buf[64];
    std::snprintf(Buf, sizeof(Buf), "%.3f/%u", CscT.elapsedMs() / 1000.0,
                  computeMetrics(P, CR).FailCasts);
    std::string CscCell = Buf;

    std::unordered_set<MethodId> Involved = Plugin.involvedMethods();
    std::unordered_set<MethodId> Union = ZSel.Selected;
    Union.insert(Involved.begin(), Involved.end());

    Cell Z = runSelective(P, ZSel.Selected);
    Cell I = runSelective(P, Involved);
    Cell U = runSelective(P, Union);
    auto Fmt = [](const Cell &C) { return C.Time + "/" + C.FailCasts; };
    std::printf("%-10s %18s %18s %18s %18s\n", BP.Name.c_str(),
                Fmt(Z).c_str(), Fmt(I).c_str(), Fmt(U).c_str(),
                CscCell.c_str());
  }
  std::printf("\nObservation: the methods CSC's edges involve are NOT the "
              "methods contexts help most — selecting them performs "
              "clearly worse than Zipper-e's selection, corroborating the "
              "paper's Table 3 finding that the two method sets overlap "
              "only partially. And plain CSC beats every selective "
              "variant on both time and #fail-cast.\n");
  return 0;
}
