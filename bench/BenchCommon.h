//===- BenchCommon.h - Shared harness support for the benches ---*- C++ -*-===//
//
// Part of the Cut-Shortcut pointer analysis reproduction.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Shared plumbing for the paper-table benchmark binaries: builds the ten
/// workload programs, runs configured analyses with the emulated timeout,
/// and formats aligned table rows. The timeout emulating the paper's
/// 2-hour budget defaults to 3000 ms per analysis and can be overridden
/// with the CSC_BENCH_BUDGET_MS environment variable.
///
//===----------------------------------------------------------------------===//

#ifndef CSC_BENCH_BENCHCOMMON_H
#define CSC_BENCH_BENCHCOMMON_H

#include "client/AnalysisRunner.h"
#include "workload/Workload.h"

#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

namespace csc::bench {

inline double budgetMs() {
  if (const char *E = std::getenv("CSC_BENCH_BUDGET_MS"))
    return std::atof(E);
  return 3000.0;
}

/// Doop's engine constant relative to Tai-e. The paper measures e.g. CI on
/// eclipse at 223 s (Doop) vs 21 s (Tai-e), a ~10-15x factor; the same 2 h
/// wall-clock budget therefore buys proportionally less work on Doop. The
/// Doop-mode harness (Table 1 / Fig. 12) divides the emulated budget by
/// this factor on top of running the engine in full re-propagation mode.
inline double doopEngineFactor() {
  if (const char *E = std::getenv("CSC_DOOP_ENGINE_FACTOR"))
    return std::atof(E);
  return 12.0;
}

struct BenchProgram {
  std::string Name;
  std::unique_ptr<Program> P;
};

/// Builds all ten paper-profile programs (exits on generator bugs).
inline std::vector<BenchProgram> buildSuite() {
  std::vector<BenchProgram> Out;
  for (const WorkloadConfig &C : paperBenchmarkSuite()) {
    std::vector<std::string> Diags;
    auto P = buildWorkloadProgram(C, Diags);
    if (!P) {
      for (const std::string &D : Diags)
        std::fprintf(stderr, "%s\n", D.c_str());
      std::exit(1);
    }
    Out.push_back({C.Name, std::move(P)});
  }
  return Out;
}

/// Runs one analysis kind with the emulated timeout. Multi-phase analyses
/// (Zipper-e) are additionally held to the budget on their total time.
inline RunOutcome runWithBudget(const Program &P, AnalysisKind K,
                                bool DoopMode) {
  RunConfig C;
  C.Kind = K;
  C.DoopMode = DoopMode;
  C.TimeBudgetMs = DoopMode ? budgetMs() / doopEngineFactor() : budgetMs();
  RunOutcome O = runAnalysis(P, C);
  if (O.TotalMs > C.TimeBudgetMs)
    O.Exhausted = true;
  return O;
}

/// ">budget" column for exhausted runs, seconds otherwise.
inline std::string fmtTime(const RunOutcome &O) {
  if (O.Exhausted)
    return ">budget";
  char Buf[32];
  std::snprintf(Buf, sizeof(Buf), "%.3f", O.TotalMs / 1000.0);
  return Buf;
}

inline std::string fmtCount(const RunOutcome &O, uint64_t V) {
  if (O.Exhausted)
    return "-";
  return std::to_string(V);
}

} // namespace csc::bench

#endif // CSC_BENCH_BENCHCOMMON_H
