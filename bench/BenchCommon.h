//===- BenchCommon.h - Shared harness support for the benches ---*- C++ -*-===//
//
// Part of the Cut-Shortcut pointer analysis reproduction.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Shared plumbing for the paper-table benchmark binaries: builds the ten
/// workload programs into AnalysisSessions, runs analysis specs with the
/// emulated timeout, formats aligned table rows, and optionally records
/// machine-readable results (--json <path>). The timeout emulating the
/// paper's 2-hour budget defaults to 3000 ms per analysis and can be
/// overridden with the CSC_BENCH_BUDGET_MS environment variable.
///
//===----------------------------------------------------------------------===//

#ifndef CSC_BENCH_BENCHCOMMON_H
#define CSC_BENCH_BENCHCOMMON_H

#include "client/AnalysisSession.h"
#include "client/Report.h"
#include "workload/Workload.h"

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

namespace csc::bench {

inline double budgetMs() {
  if (const char *E = std::getenv("CSC_BENCH_BUDGET_MS"))
    return std::atof(E);
  return 3000.0;
}

/// Doop's engine constant relative to Tai-e. The paper measures e.g. CI on
/// eclipse at 223 s (Doop) vs 21 s (Tai-e), a ~10-15x factor; the same 2 h
/// wall-clock budget therefore buys proportionally less work on Doop. The
/// Doop-mode harness (Table 1 / Fig. 12) divides the emulated budget by
/// this factor on top of running the engine in full re-propagation mode.
inline double doopEngineFactor() {
  if (const char *E = std::getenv("CSC_DOOP_ENGINE_FACTOR"))
    return std::atof(E);
  return 12.0;
}

struct BenchProgram {
  std::string Name;
  std::unique_ptr<AnalysisSession> S;
  const Program &program() const { return S->program(); }
};

/// Builds all ten paper-profile programs (exits on generator bugs).
inline std::vector<BenchProgram> buildSuite() {
  std::vector<BenchProgram> Out;
  for (const WorkloadConfig &C : paperBenchmarkSuite()) {
    std::vector<std::string> Diags;
    auto P = buildWorkloadProgram(C, Diags);
    std::unique_ptr<AnalysisSession> S;
    if (P)
      S = AnalysisSession::adopt(std::move(P), {}, Diags);
    if (!S) {
      for (const std::string &D : Diags)
        std::fprintf(stderr, "%s\n", D.c_str());
      std::exit(1);
    }
    Out.push_back({C.Name, std::move(S)});
  }
  return Out;
}

/// Runs one analysis spec with the emulated timeout. Multi-phase analyses
/// (Zipper-e) are additionally held to the budget on their total time.
inline AnalysisRun runWithBudget(AnalysisSession &S, const std::string &Spec,
                                 bool DoopMode) {
  double Budget = DoopMode ? budgetMs() / doopEngineFactor() : budgetMs();
  S.setTimeBudgetMs(Budget);
  AnalysisRun O = S.run(DoopMode ? Spec + ";engine=doop" : Spec);
  if (O.Status == RunStatus::SpecError) {
    std::fprintf(stderr, "bench spec error: %s\n", O.Error.c_str());
    std::exit(1);
  }
  if (O.completed() && O.Timings.TotalMs > Budget)
    O.Status = RunStatus::BudgetExhausted;
  return O;
}

/// ">budget" column for exhausted runs, seconds otherwise.
inline std::string fmtTime(const AnalysisRun &O) {
  if (!O.completed())
    return ">budget";
  char Buf[32];
  std::snprintf(Buf, sizeof(Buf), "%.3f", O.Timings.TotalMs / 1000.0);
  return Buf;
}

inline std::string fmtCount(const AnalysisRun &O, uint64_t V) {
  if (!O.completed())
    return "-";
  return std::to_string(V);
}

//===----------------------------------------------------------------------===//
// Machine-readable bench output (--json <path>)
//===----------------------------------------------------------------------===//

struct BenchOptions {
  std::string JsonPath;
};

/// Parses the shared bench flags; exits(2) on unknown arguments.
inline BenchOptions parseBenchOptions(int Argc, char **Argv) {
  BenchOptions Out;
  for (int I = 1; I < Argc; ++I) {
    std::string Arg = Argv[I];
    if (Arg.rfind("--json=", 0) == 0) {
      Out.JsonPath = Arg.substr(7);
    } else if (Arg == "--json" && I + 1 < Argc) {
      Out.JsonPath = Argv[++I];
    } else {
      std::fprintf(stderr, "usage: %s [--json <path>]\n", Argv[0]);
      std::exit(2);
    }
  }
  return Out;
}

/// Accumulates per-(program, analysis) records and writes one JSON
/// document — the seed of the BENCH_*.json perf trajectory. Disabled
/// (no-op) when constructed with an empty path.
class BenchJson {
public:
  BenchJson(std::string BenchName, std::string Path)
      : Path(std::move(Path)) {
    if (!enabled())
      return;
    J.beginObject();
    J.kv("bench", BenchName);
    J.kv("budget_ms", budgetMs());
    J.kv("doop_engine_factor", doopEngineFactor());
    J.key("records").beginArray();
  }

  bool enabled() const { return !Path.empty(); }

  /// Records one analysis run.
  void record(const std::string &Prog, const AnalysisRun &O) {
    if (!enabled())
      return;
    J.beginObject().kv("program", Prog).key("run");
    appendRunJson(J, O);
    J.endObject();
  }

  /// Records a bespoke row of numeric results (ablations, recall, ...).
  void custom(const std::string &Prog, const std::string &Label,
              const std::vector<std::pair<std::string, double>> &KV) {
    if (!enabled())
      return;
    J.beginObject().kv("program", Prog).kv("label", Label);
    for (const auto &[K, V] : KV)
      J.kv(K, V);
    J.endObject();
  }

  /// Closes the document and writes the file; returns false on I/O error.
  bool write() {
    if (!enabled())
      return true;
    J.endArray().endObject();
    std::ofstream Out(Path);
    if (!Out) {
      std::fprintf(stderr, "error: cannot write '%s'\n", Path.c_str());
      return false;
    }
    Out << J.str() << "\n";
    std::fprintf(stderr, "wrote %s\n", Path.c_str());
    return true;
  }

private:
  std::string Path;
  JsonWriter J;
};

} // namespace csc::bench

#endif // CSC_BENCH_BENCHCOMMON_H
