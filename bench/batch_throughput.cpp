//===- batch_throughput.cpp - Batch engine throughput bench ---------------===//
//
// Part of the Cut-Shortcut pointer analysis reproduction.
//
// Measures the batch executor's specs/second over the scaling-tier
// workloads in three passes sharing pre-built sessions:
//
//   jobs1   — sequential baseline (cold result cache),
//   jobsN   — the thread pool at --jobs N (cold result cache), verified
//             to produce a byte-identical aggregate report,
//   cached  — the jobsN executor run again over the identical batch; every
//             run must come from the result cache.
//
// With --json the BenchJson document records one row per pass (wall_ms,
// specs_per_sec) plus the speedup and cache-hit counts. Exit status 3 if
// the aggregate reports diverge or the cached pass misses the cache —
// the functional gates the perf-smoke CI job enforces (the speedup itself
// is reported, not gated: CI runner core counts vary).
//
// --emit <dir> instead writes the tier programs as <dir>/scale-*.jir plus
// a <dir>/batch.json manifest, so the same workload can be driven through
// the end-user CLI: cscpta --batch <dir>/batch.json --jobs 4.
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

#include "client/BatchExecutor.h"
#include "support/Json.h"
#include "support/ThreadPool.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>
#include <vector>

using namespace csc;
using namespace csc::bench;

namespace {

void usage(const char *Prog) {
  std::fprintf(
      stderr,
      "usage: %s [--json <path>] [--jobs <n>] [--tiers <n>] [--specs "
      "<list>] [--emit <dir>]\n",
      Prog);
  std::exit(2);
}

double specsPerSec(size_t Runs, double WallMs) {
  return WallMs > 0 ? static_cast<double>(Runs) / (WallMs / 1000.0) : 0.0;
}

/// Writes the tier programs as .jir files plus a cscpta --batch manifest
/// into \p Dir (which must exist). Returns the process exit code.
int emitTiers(const std::string &Dir, size_t MaxTiers,
              const std::vector<std::string> &Specs) {
  JsonWriter M;
  M.beginObject().key("entries").beginArray();
  size_t Tier = 0;
  for (const WorkloadConfig &C : scalingSuite()) {
    if (Tier >= MaxTiers)
      break;
    ++Tier;
    std::string File = C.Name + ".jir";
    std::ofstream Out(Dir + "/" + File);
    if (!Out) {
      std::fprintf(stderr, "error: cannot write '%s/%s'\n", Dir.c_str(),
                   File.c_str());
      return 1;
    }
    Out << generateWorkload(C);
    M.beginObject().kv("label", C.Name).kv("program", File);
    M.key("specs").beginArray();
    for (const std::string &S : Specs)
      M.value(S);
    M.endArray().endObject();
  }
  M.endArray().endObject();
  std::string Path = Dir + "/batch.json";
  std::ofstream Out(Path);
  if (!Out) {
    std::fprintf(stderr, "error: cannot write '%s'\n", Path.c_str());
    return 1;
  }
  Out << M.str() << "\n";
  std::printf("wrote %zu tier programs and %s\n", Tier, Path.c_str());
  std::printf("drive them with: build/tools/cscpta --batch %s --jobs 4\n",
              Path.c_str());
  return 0;
}

} // namespace

int main(int Argc, char **Argv) {
  std::string JsonPath;
  std::string EmitDir;
  std::string SpecList = "ci,csc,2obj";
  int JobsArg = 0;
  bool JobsSet = false;
  size_t MaxTiers = ~static_cast<size_t>(0);
  for (int I = 1; I < Argc; ++I) {
    std::string Arg = Argv[I];
    if (Arg == "--json" && I + 1 < Argc)
      JsonPath = Argv[++I];
    else if (Arg.rfind("--json=", 0) == 0)
      JsonPath = Arg.substr(7);
    else if (Arg == "--jobs" && I + 1 < Argc) {
      JobsArg = std::atoi(Argv[++I]);
      JobsSet = true;
    } else if (Arg.rfind("--jobs=", 0) == 0) {
      JobsArg = std::atoi(Arg.c_str() + 7);
      JobsSet = true;
    }
    else if (Arg == "--tiers" && I + 1 < Argc)
      MaxTiers = static_cast<size_t>(std::atoi(Argv[++I]));
    else if (Arg.rfind("--tiers=", 0) == 0)
      MaxTiers = static_cast<size_t>(std::atoi(Arg.c_str() + 8));
    else if (Arg == "--specs" && I + 1 < Argc)
      SpecList = Argv[++I];
    else if (Arg.rfind("--specs=", 0) == 0)
      SpecList = Arg.substr(8);
    else if (Arg == "--emit" && I + 1 < Argc)
      EmitDir = Argv[++I];
    else if (Arg.rfind("--emit=", 0) == 0)
      EmitDir = Arg.substr(7);
    else
      usage(Argv[0]);
  }
  unsigned Jobs = std::min(4u, ThreadPool::defaultThreadCount());
  if (JobsSet) {
    if (JobsArg < 1 || JobsArg > 1024) {
      std::fprintf(stderr,
                   "error: --jobs expects a positive integer <= 1024\n");
      return 2;
    }
    Jobs = static_cast<unsigned>(JobsArg);
  }
  std::vector<std::string> Specs = splitSpecList(SpecList);
  if (Specs.empty())
    usage(Argv[0]);
  if (!EmitDir.empty())
    return emitTiers(EmitDir, MaxTiers, Specs);

  // Pre-build one session per tier: throughput measures analysis, not
  // workload generation/parsing. Both executors share these sessions —
  // exactly the shared-immutable-Program contract the engine relies on.
  std::vector<BatchEntry> Entries;
  size_t Tier = 0;
  for (const WorkloadConfig &C : scalingSuite()) {
    if (Tier >= MaxTiers)
      break;
    ++Tier;
    std::vector<std::string> Diags;
    auto P = buildWorkloadProgram(C, Diags);
    std::shared_ptr<AnalysisSession> S;
    if (P)
      S = AnalysisSession::adopt(std::move(P), {}, Diags);
    if (!S) {
      for (const std::string &D : Diags)
        std::fprintf(stderr, "%s\n", D.c_str());
      return 1;
    }
    S->setTimeBudgetMs(budgetMs());
    BatchEntry E;
    E.Label = C.Name;
    E.Session = std::move(S);
    E.Specs = Specs;
    Entries.push_back(std::move(E));
  }

  BatchExecutor::Options Seq;
  Seq.Jobs = 1;
  Seq.TimeBudgetMs = budgetMs();
  BatchExecutor SeqExec(Seq);

  BatchExecutor::Options Par = Seq;
  Par.Jobs = Jobs;
  BatchExecutor ParExec(Par);

  std::printf("Batch throughput: %zu entries x %zu specs, jobs %u "
              "(budget %.0f ms per run)\n",
              Entries.size(), Specs.size(), Jobs, budgetMs());
  std::printf("%-8s %10s %12s %12s\n", "pass", "wall(ms)", "specs/s",
              "cache-hits");

  BatchReport R1 = SeqExec.run(Entries);
  std::printf("%-8s %10.1f %12.1f %12llu\n", "jobs1", R1.WallMs,
              specsPerSec(R1.totalRuns(), R1.WallMs),
              static_cast<unsigned long long>(R1.CacheHits));

  BatchReport RN = ParExec.run(Entries);
  std::printf("%-8s %10.1f %12.1f %12llu\n", "jobsN", RN.WallMs,
              specsPerSec(RN.totalRuns(), RN.WallMs),
              static_cast<unsigned long long>(RN.CacheHits));

  BatchReport RC = ParExec.run(Entries);
  std::printf("%-8s %10.1f %12.1f %12llu\n", "cached", RC.WallMs,
              specsPerSec(RC.totalRuns(), RC.WallMs),
              static_cast<unsigned long long>(RC.CacheHits));

  double Speedup = RN.WallMs > 0 ? R1.WallMs / RN.WallMs : 0.0;
  std::printf("speedup jobs1 -> jobs%u: %.2fx\n", Jobs, Speedup);

  bool Identical = R1.aggregateJson() == RN.aggregateJson() &&
                   RN.aggregateJson() == RC.aggregateJson();
  bool CacheServed = RC.CacheHits == RC.totalRuns() && RC.CacheHits > 0;
  if (!Identical)
    std::fprintf(stderr, "error: aggregate reports diverged across "
                         "jobs/cache passes\n");
  if (!CacheServed)
    std::fprintf(stderr,
                 "error: cached pass expected %zu cache hits, got %llu\n",
                 RC.totalRuns(),
                 static_cast<unsigned long long>(RC.CacheHits));

  BenchJson J("batch_throughput", JsonPath);
  J.custom("all", "jobs1",
           {{"wall_ms", R1.WallMs},
            {"specs_per_sec", specsPerSec(R1.totalRuns(), R1.WallMs)},
            {"runs", static_cast<double>(R1.totalRuns())}});
  J.custom("all", "jobsN",
           {{"jobs", static_cast<double>(Jobs)},
            {"wall_ms", RN.WallMs},
            {"specs_per_sec", specsPerSec(RN.totalRuns(), RN.WallMs)},
            {"speedup", Speedup}});
  J.custom("all", "cached",
           {{"wall_ms", RC.WallMs},
            {"specs_per_sec", specsPerSec(RC.totalRuns(), RC.WallMs)},
            {"cache_hits", static_cast<double>(RC.CacheHits)},
            {"identical_reports", Identical ? 1.0 : 0.0}});
  if (!J.write())
    return 1;

  return (Identical && CacheServed) ? 0 : 3;
}
