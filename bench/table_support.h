//===- table_support.h - Shared Table 1/2 rendering -------------*- C++ -*-===//
//
// Part of the Cut-Shortcut pointer analysis reproduction.
//
//===----------------------------------------------------------------------===//

#ifndef CSC_BENCH_TABLE_SUPPORT_H
#define CSC_BENCH_TABLE_SUPPORT_H

#include "BenchCommon.h"

#include <cstdio>

namespace csc::bench {

/// Prints one of the paper's efficiency/precision tables (Tables 1 and 2
/// share this layout; they differ in the engine mode) and records every
/// run into \p J.
inline void printMetricsTable(const char *Title, bool DoopMode,
                              BenchJson &J) {
  std::printf("%s\n", Title);
  std::printf("(budget %.0f ms%s)\n", budgetMs(),
              DoopMode ? ", divided by the Doop engine factor" : "");
  std::printf("%-10s %-9s %10s %10s %10s %10s %12s\n", "program",
              "analysis", "time(s)", "#fail-cast", "#reach-mtd",
              "#poly-call", "#call-edge");
  const char *Specs[] = {"ci", "2obj", "2type", "zipper-e", "csc"};
  for (BenchProgram &BP : buildSuite()) {
    for (const char *Spec : Specs) {
      AnalysisRun O = runWithBudget(*BP.S, Spec, DoopMode);
      J.record(BP.Name, O);
      std::printf("%-10s %-9s %10s %10s %10s %10s %12s\n",
                  BP.Name.c_str(), Spec, fmtTime(O).c_str(),
                  fmtCount(O, O.Metrics.FailCasts).c_str(),
                  fmtCount(O, O.Metrics.ReachMethods).c_str(),
                  fmtCount(O, O.Metrics.PolyCalls).c_str(),
                  fmtCount(O, O.Metrics.CallEdges).c_str());
    }
    std::printf("\n");
  }
}

} // namespace csc::bench

#endif // CSC_BENCH_TABLE_SUPPORT_H
