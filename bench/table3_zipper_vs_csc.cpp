//===- table3_zipper_vs_csc.cpp - Table 3 ---------------------------------===//
//
// Part of the Cut-Shortcut pointer analysis reproduction.
//
// Regenerates Table 3: the detailed Zipper-e vs Cut-Shortcut comparison —
// Zipper-e's total / pre-analysis / main-analysis time and selected-method
// count against CSC's time, the number of methods involved in cut/shortcut
// edges, and the overlap between the two method sets. Left half = Doop
// engine, right half = Tai-e engine, like the paper. The session's Zipper
// cache means the (engine-independent) pre-analysis is shared between the
// two halves, exactly as a fair comparison requires.
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

#include <cstdio>

using namespace csc;
using namespace csc::bench;

namespace {

struct HalfRow {
  std::string ZTotal, ZPre, ZMain;
  uint32_t Selected = 0;
  std::string CscTime;
  uint32_t Involved = 0;
  double OverlapPct = 0;
};

HalfRow measure(AnalysisSession &S, bool DoopMode, BenchJson &J,
                const std::string &ProgName) {
  HalfRow Row;
  double Budget = DoopMode ? budgetMs() / doopEngineFactor() : budgetMs();

  // Zipper-e through the session; phase split comes from the timings.
  AnalysisRun Z = runWithBudget(S, "zipper-e", DoopMode);
  J.record(ProgName, Z);
  Row.Selected = Z.SelectedMethods;
  double TotalMs = Z.Timings.PreMs + Z.Timings.MainMs;
  bool ZExhausted = !Z.completed() || TotalMs > Budget;
  char Buf[32];
  auto Fmt = [&Buf](double Ms) {
    std::snprintf(Buf, sizeof(Buf), "%.3f", Ms / 1000.0);
    return std::string(Buf);
  };
  Row.ZPre = Fmt(Z.Timings.PreMs);
  Row.ZMain = ZExhausted ? ">budget" : Fmt(Z.Timings.MainMs);
  Row.ZTotal = ZExhausted ? ">budget" : Fmt(TotalMs);

  // Cut-Shortcut with its involved-method statistics.
  AnalysisRun C = runWithBudget(S, "csc", DoopMode);
  J.record(ProgName, C);
  Row.CscTime = C.completed() ? Fmt(C.Timings.MainMs) : ">budget";
  Row.Involved = static_cast<uint32_t>(C.Csc.Involved.size());

  // Overlap against the cached selection (same key the recipe used).
  const ZipperSelection &Sel = S.zipperSelection(ZipperOptions{});
  uint32_t Overlap = 0;
  for (MethodId M : C.Csc.Involved)
    Overlap += Sel.Selected.count(M) ? 1 : 0;
  Row.OverlapPct =
      C.Csc.Involved.empty() ? 0.0 : 100.0 * Overlap / C.Csc.Involved.size();
  return Row;
}

void printHalf(const char *Name, const HalfRow &R) {
  std::printf("%-10s %9s %9s %9s %9u %9s %9u %8.1f%%\n", Name,
              R.ZTotal.c_str(), R.ZPre.c_str(), R.ZMain.c_str(), R.Selected,
              R.CscTime.c_str(), R.Involved, R.OverlapPct);
}

} // namespace

int main(int Argc, char **Argv) {
  BenchOptions BO = parseBenchOptions(Argc, Argv);
  BenchJson J("table3_zipper_vs_csc", BO.JsonPath);
  std::printf("Table 3: Zipper-e vs Cut-Shortcut, per engine mode\n");
  std::printf("(columns: Zipper-e total / pre-analysis / main-analysis "
              "time in s, #selected methods; CSC time in s, #involved "
              "methods, %% of involved methods also selected)\n");
  auto Suite = buildSuite();
  for (bool DoopMode : {true, false}) {
    std::printf("\n-- %s engine --\n",
                DoopMode ? "Doop-style" : "Tai-e-style");
    std::printf("%-10s %9s %9s %9s %9s %9s %9s %9s\n", "program", "Z-total",
                "Z-pre", "Z-main", "Z-sel", "CSC-time", "involved",
                "overlap");
    for (BenchProgram &BP : Suite)
      printHalf(BP.Name.c_str(), measure(*BP.S, DoopMode, J, BP.Name));
  }
  std::printf("\nExpected shape (paper): CSC is several times faster than "
              "Zipper-e even ignoring Zipper-e's pre-analysis; the method "
              "sets overlap only partially (~31%% in the paper).\n");
  return J.write() ? 0 : 1;
}
