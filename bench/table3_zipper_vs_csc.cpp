//===- table3_zipper_vs_csc.cpp - Table 3 ----------------------------------===//
//
// Part of the Cut-Shortcut pointer analysis reproduction.
//
// Regenerates Table 3: the detailed Zipper-e vs Cut-Shortcut comparison —
// Zipper-e's total / pre-analysis / main-analysis time and selected-method
// count against CSC's time, the number of methods involved in cut/shortcut
// edges, and the overlap between the two method sets. Left half = Doop
// engine, right half = Tai-e engine, like the paper.
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

#include "csc/CutShortcutPlugin.h"
#include "pta/Solver.h"
#include "stdlib/ContainerSpec.h"
#include "support/Timer.h"
#include "zipper/Zipper.h"

#include <cstdio>

using namespace csc;
using namespace csc::bench;

namespace {

struct HalfRow {
  std::string ZTotal, ZPre, ZMain;
  uint32_t Selected = 0;
  std::string CscTime;
  uint32_t Involved = 0;
  double OverlapPct = 0;
};

HalfRow measure(const Program &P, bool DoopMode) {
  HalfRow Row;
  double Budget = DoopMode ? budgetMs() / doopEngineFactor() : budgetMs();

  // Zipper-e, phase by phase (so the pre/main split can be reported).
  ZipperOptions ZOpts;
  ZipperSelection Sel = runZipperSelection(P, ZOpts);
  Row.Selected = static_cast<uint32_t>(Sel.Selected.size());
  KObjSelector Inner(2);
  SelectiveSelector Selective(Inner, Sel.Selected);
  SolverOptions MainOpts;
  MainOpts.Selector = &Selective;
  MainOpts.DeltaPropagation = !DoopMode;
  MainOpts.TimeBudgetMs = Budget;
  Timer MainT;
  Solver ZS(P, MainOpts);
  PTAResult ZR = ZS.solve();
  double MainMs = MainT.elapsedMs();
  double TotalMs = Sel.PreAnalysisMs + MainMs;
  bool ZExhausted = ZR.Exhausted || TotalMs > Budget;
  char Buf[32];
  auto Fmt = [&Buf](double Ms) {
    std::snprintf(Buf, sizeof(Buf), "%.3f", Ms / 1000.0);
    return std::string(Buf);
  };
  Row.ZPre = Fmt(Sel.PreAnalysisMs);
  Row.ZMain = ZExhausted ? ">budget" : Fmt(MainMs);
  Row.ZTotal = ZExhausted ? ">budget" : Fmt(TotalMs);

  // Cut-Shortcut with its involved-method statistics.
  ContainerSpec Spec = ContainerSpec::forProgram(P);
  CutShortcutOptions CscOpts;
  if (DoopMode)
    CscOpts.FieldLoad = false;
  CutShortcutPlugin Plugin(P, Spec, CscOpts);
  SolverOptions CscSolverOpts;
  CscSolverOpts.DeltaPropagation = !DoopMode;
  CscSolverOpts.TimeBudgetMs = Budget;
  Timer CscT;
  Solver CS(P, CscSolverOpts);
  CS.addPlugin(&Plugin);
  PTAResult CR = CS.solve();
  Row.CscTime = CR.Exhausted ? ">budget" : Fmt(CscT.elapsedMs());
  const auto &Involved = Plugin.involvedMethods();
  Row.Involved = static_cast<uint32_t>(Involved.size());
  uint32_t Overlap = 0;
  for (MethodId M : Involved)
    Overlap += Sel.Selected.count(M) ? 1 : 0;
  Row.OverlapPct =
      Involved.empty() ? 0.0 : 100.0 * Overlap / Involved.size();
  return Row;
}

void printHalf(const char *Name, const HalfRow &R) {
  std::printf("%-10s %9s %9s %9s %9u %9s %9u %8.1f%%\n", Name,
              R.ZTotal.c_str(), R.ZPre.c_str(), R.ZMain.c_str(), R.Selected,
              R.CscTime.c_str(), R.Involved, R.OverlapPct);
}

} // namespace

int main() {
  std::printf("Table 3: Zipper-e vs Cut-Shortcut, per engine mode\n");
  std::printf("(columns: Zipper-e total / pre-analysis / main-analysis "
              "time in s, #selected methods; CSC time in s, #involved "
              "methods, %% of involved methods also selected)\n");
  auto Suite = buildSuite();
  for (bool DoopMode : {true, false}) {
    std::printf("\n-- %s engine --\n",
                DoopMode ? "Doop-style" : "Tai-e-style");
    std::printf("%-10s %9s %9s %9s %9s %9s %9s %9s\n", "program", "Z-total",
                "Z-pre", "Z-main", "Z-sel", "CSC-time", "involved",
                "overlap");
    for (BenchProgram &BP : Suite)
      printHalf(BP.Name.c_str(), measure(*BP.P, DoopMode));
  }
  std::printf("\nExpected shape (paper): CSC is several times faster than "
              "Zipper-e even ignoring Zipper-e's pre-analysis; the method "
              "sets overlap only partially (~31%% in the paper).\n");
  return 0;
}
