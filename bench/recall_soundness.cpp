//===- recall_soundness.cpp - §5.1 recall (soundness) experiment ----------===//
//
// Part of the Cut-Shortcut pointer analysis reproduction.
//
// Regenerates the recall experiment of §5.1: execute every program
// (several seeds of the nondeterministic branches) and check that each
// analysis over-approximates the dynamically observed reachable methods,
// call-graph edges, points-to facts, and failed casts. The paper reports
// CSC recalls virtually everything the other sound analyses recall; here
// the checks are exact (our "instrumentation" has no tooling noise).
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

#include "interp/Interpreter.h"

#include <cstdio>

using namespace csc;
using namespace csc::bench;

namespace {

struct Recall {
  uint64_t Methods = 0, MethodsMissed = 0;
  uint64_t Edges = 0, EdgesMissed = 0;
  uint64_t PtFacts = 0, PtMissed = 0;
  uint64_t Casts = 0, CastsMissed = 0;
};

Recall checkRecall(const Program &P, const DynamicFacts &Dyn,
                   const PTAResult &R) {
  Recall Out;
  for (MethodId M : Dyn.ReachedMethods) {
    ++Out.Methods;
    Out.MethodsMissed += R.isReachable(M) ? 0 : 1;
  }
  for (uint64_t E : Dyn.CallEdges) {
    ++Out.Edges;
    CallSiteId CS = static_cast<CallSiteId>(E >> 32);
    MethodId M = static_cast<MethodId>(E & 0xFFFFFFFFu);
    bool Found = false;
    for (MethodId Callee : R.calleesOf(CS))
      Found = Found || Callee == M;
    Out.EdgesMissed += Found ? 0 : 1;
  }
  for (const auto &[V, Objs] : Dyn.VarPointsTo)
    for (ObjId O : Objs) {
      ++Out.PtFacts;
      Out.PtMissed += R.pt(V).contains(O) ? 0 : 1;
    }
  // Dynamically failed casts must be flagged may-fail.
  std::vector<StmtId> MayFail = mayFailCasts(P, R);
  for (StmtId S : Dyn.FailedCasts) {
    ++Out.Casts;
    bool Found = false;
    for (StmtId F : MayFail)
      Found = Found || F == S;
    Out.CastsMissed += Found ? 0 : 1;
  }
  return Out;
}

} // namespace

int main(int Argc, char **Argv) {
  BenchOptions Opts = parseBenchOptions(Argc, Argv);
  BenchJson J("recall_soundness", Opts.JsonPath);
  std::printf("Recall experiment: dynamic facts (5 seeds) vs static "
              "over-approximation\n");
  std::printf("%-10s %-9s %14s %14s %16s %12s\n", "program", "analysis",
              "methods", "call-edges", "var-pt-facts", "failed-casts");
  bool AllSound = true;
  for (BenchProgram &BP : buildSuite()) {
    DynamicFacts Dyn = interpretManySeeds(BP.program(), 5);
    for (const char *Spec : {"ci", "csc", "2obj"}) {
      AnalysisRun O = runWithBudget(*BP.S, Spec, /*DoopMode=*/false);
      if (!O.completed()) {
        std::printf("%-10s %-9s %14s\n", BP.Name.c_str(), Spec, ">budget");
        continue;
      }
      Recall Rc = checkRecall(BP.program(), Dyn, O.Result);
      J.custom(BP.Name, Spec,
               {{"methods", static_cast<double>(Rc.Methods)},
                {"methods_missed", static_cast<double>(Rc.MethodsMissed)},
                {"call_edges", static_cast<double>(Rc.Edges)},
                {"call_edges_missed", static_cast<double>(Rc.EdgesMissed)},
                {"pt_facts", static_cast<double>(Rc.PtFacts)},
                {"pt_facts_missed", static_cast<double>(Rc.PtMissed)},
                {"failed_casts", static_cast<double>(Rc.Casts)},
                {"failed_casts_missed",
                 static_cast<double>(Rc.CastsMissed)}});
      std::printf("%-10s %-9s %8llu/%-5llu %8llu/%-5llu %10llu/%-5llu "
                  "%6llu/%-5llu\n",
                  BP.Name.c_str(), Spec,
                  static_cast<unsigned long long>(Rc.Methods -
                                                  Rc.MethodsMissed),
                  static_cast<unsigned long long>(Rc.Methods),
                  static_cast<unsigned long long>(Rc.Edges - Rc.EdgesMissed),
                  static_cast<unsigned long long>(Rc.Edges),
                  static_cast<unsigned long long>(Rc.PtFacts - Rc.PtMissed),
                  static_cast<unsigned long long>(Rc.PtFacts),
                  static_cast<unsigned long long>(Rc.Casts -
                                                  Rc.CastsMissed),
                  static_cast<unsigned long long>(Rc.Casts));
      AllSound = AllSound && Rc.MethodsMissed == 0 && Rc.EdgesMissed == 0 &&
                 Rc.PtMissed == 0 && Rc.CastsMissed == 0;
    }
  }
  std::printf("\n%s\n", AllSound
                            ? "RESULT: full recall — every dynamic fact is "
                              "over-approximated by every analysis."
                            : "RESULT: RECALL FAILURE — soundness bug!");
  if (!J.write())
    return 1;
  return AllSound ? 0 : 1;
}
