//===- micro_engine.cpp - Engine microbenchmarks --------------------------===//
//
// Part of the Cut-Shortcut pointer analysis reproduction.
//
// Google-benchmark microbenchmarks supporting the §5.1 discussion that
// "the analysis cost of PFG manipulation is usually negligible": points-to
// set operations across representations, PFG edge insertion, and
// end-to-end solver throughput with and without the Cut-Shortcut plugin.
//
//===----------------------------------------------------------------------===//

#include "csc/CutShortcutPlugin.h"
#include "pta/PointerFlowGraph.h"
#include "pta/Solver.h"
#include "stdlib/ContainerSpec.h"
#include "support/PointsToSet.h"
#include "support/Rng.h"
#include "workload/Workload.h"

#include <benchmark/benchmark.h>

using namespace csc;

static void BM_PointsToSetInsert(benchmark::State &State) {
  const uint32_t N = static_cast<uint32_t>(State.range(0));
  Rng R(1);
  std::vector<uint32_t> Values;
  for (uint32_t I = 0; I < N; ++I)
    Values.push_back(R.nextInRange(N * 4));
  for (auto _ : State) {
    PointsToSet S;
    for (uint32_t V : Values)
      benchmark::DoNotOptimize(S.insert(V));
  }
  State.SetItemsProcessed(State.iterations() * N);
}
BENCHMARK(BM_PointsToSetInsert)->Arg(8)->Arg(64)->Arg(1024)->Arg(16384);

static void BM_PointsToSetContains(benchmark::State &State) {
  const uint32_t N = static_cast<uint32_t>(State.range(0));
  PointsToSet S;
  Rng R(2);
  for (uint32_t I = 0; I < N; ++I)
    S.insert(R.nextInRange(N * 4));
  uint32_t Probe = 0;
  for (auto _ : State) {
    benchmark::DoNotOptimize(S.contains(Probe));
    Probe = (Probe + 7919) % (N * 4);
  }
}
BENCHMARK(BM_PointsToSetContains)->Arg(8)->Arg(1024)->Arg(65536);

static void BM_PointsToSetIterate(benchmark::State &State) {
  const uint32_t N = static_cast<uint32_t>(State.range(0));
  PointsToSet S;
  for (uint32_t I = 0; I < N; ++I)
    S.insert(I * 3);
  for (auto _ : State) {
    uint64_t Sum = 0;
    S.forEach([&Sum](uint32_t O) { Sum += O; });
    benchmark::DoNotOptimize(Sum);
  }
  State.SetItemsProcessed(State.iterations() * N);
}
BENCHMARK(BM_PointsToSetIterate)->Arg(16)->Arg(4096);

static void BM_PFGEdgeInsert(benchmark::State &State) {
  const uint32_t N = static_cast<uint32_t>(State.range(0));
  Rng R(3);
  std::vector<std::pair<PtrId, PtrId>> Edges;
  for (uint32_t I = 0; I < N; ++I)
    Edges.emplace_back(R.nextInRange(N), R.nextInRange(N));
  for (auto _ : State) {
    PointerFlowGraph G;
    for (auto [S, T] : Edges)
      benchmark::DoNotOptimize(G.addEdge(S, T, InvalidId));
  }
  State.SetItemsProcessed(State.iterations() * N);
}
BENCHMARK(BM_PFGEdgeInsert)->Arg(1024)->Arg(65536);

namespace {

std::unique_ptr<Program> midProgram() {
  WorkloadConfig C;
  C.Name = "micro";
  C.Seed = 4;
  C.NumScenarios = 30;
  C.ActionsPerScenario = 12;
  std::vector<std::string> Diags;
  auto P = buildWorkloadProgram(C, Diags);
  if (!P)
    std::abort();
  return P;
}

} // namespace

static void BM_SolverCI(benchmark::State &State) {
  auto P = midProgram();
  for (auto _ : State) {
    Solver S(*P, {});
    PTAResult R = S.solve();
    benchmark::DoNotOptimize(R.Stats.PtsInsertions);
  }
}
BENCHMARK(BM_SolverCI)->Unit(benchmark::kMillisecond);

static void BM_SolverCSC(benchmark::State &State) {
  auto P = midProgram();
  ContainerSpec Spec = ContainerSpec::forProgram(*P);
  for (auto _ : State) {
    CutShortcutPlugin Plugin(*P, Spec);
    Solver S(*P, {});
    S.addPlugin(&Plugin);
    PTAResult R = S.solve();
    benchmark::DoNotOptimize(R.Stats.PtsInsertions);
  }
}
BENCHMARK(BM_SolverCSC)->Unit(benchmark::kMillisecond);

static void BM_SolverCIDoopMode(benchmark::State &State) {
  auto P = midProgram();
  SolverOptions Opts;
  Opts.DeltaPropagation = false;
  for (auto _ : State) {
    Solver S(*P, Opts);
    PTAResult R = S.solve();
    benchmark::DoNotOptimize(R.Stats.PtsInsertions);
  }
}
BENCHMARK(BM_SolverCIDoopMode)->Unit(benchmark::kMillisecond);

BENCHMARK_MAIN();
