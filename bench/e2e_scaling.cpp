//===- e2e_scaling.cpp - End-to-end scaling bench -------------------------===//
//
// Part of the Cut-Shortcut pointer analysis reproduction.
//
// Runs a spec list (default ci,csc,2obj) over the size-parameterized
// scalingSuite() workload tiers and prints analysis time plus solver work
// counters per (tier, analysis). This is the perf record CI tracks: with
// --json the BenchJson document carries one record per run, plus a
// "program" record per tier with its size.
//
// The first tier is the CI smoke gate: if any analysis exhausts its budget
// there, the bench exits with status 3 so the perf-smoke job fails.
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

using namespace csc;
using namespace csc::bench;

namespace {

void usage(const char *Prog) {
  std::fprintf(stderr,
               "usage: %s [--json <path>] [--tiers <n>] [--specs <list>]\n",
               Prog);
  std::exit(2);
}

std::vector<std::string> splitSpecs(const std::string &List) {
  std::vector<std::string> Out;
  size_t Pos = 0;
  while (Pos <= List.size()) {
    size_t Comma = List.find(',', Pos);
    if (Comma == std::string::npos)
      Comma = List.size();
    if (Comma > Pos)
      Out.push_back(List.substr(Pos, Comma - Pos));
    Pos = Comma + 1;
  }
  return Out;
}

} // namespace

int main(int Argc, char **Argv) {
  std::string JsonPath;
  std::string SpecList = "ci,csc,2obj";
  size_t MaxTiers = ~static_cast<size_t>(0);
  for (int I = 1; I < Argc; ++I) {
    std::string Arg = Argv[I];
    if (Arg == "--json" && I + 1 < Argc)
      JsonPath = Argv[++I];
    else if (Arg.rfind("--json=", 0) == 0)
      JsonPath = Arg.substr(7);
    else if (Arg == "--tiers" && I + 1 < Argc)
      MaxTiers = static_cast<size_t>(std::atoi(Argv[++I]));
    else if (Arg.rfind("--tiers=", 0) == 0)
      MaxTiers = static_cast<size_t>(std::atoi(Arg.c_str() + 8));
    else if (Arg == "--specs" && I + 1 < Argc)
      SpecList = Argv[++I];
    else if (Arg.rfind("--specs=", 0) == 0)
      SpecList = Arg.substr(8);
    else
      usage(Argv[0]);
  }
  std::vector<std::string> Specs = splitSpecs(SpecList);
  if (Specs.empty())
    usage(Argv[0]);

  BenchJson J("e2e_scaling", JsonPath);
  std::printf("End-to-end scaling: analysis time in seconds per workload "
              "tier (budget %.0f ms per run)\n",
              budgetMs());
  std::printf("%-10s %8s", "tier", "stmts");
  for (const std::string &Spec : Specs)
    std::printf(" %12s", Spec.c_str());
  std::printf("\n");

  bool SmokeFailed = false;
  size_t Tier = 0;
  for (const WorkloadConfig &C : scalingSuite()) {
    if (Tier >= MaxTiers)
      break;
    std::vector<std::string> Diags;
    auto P = buildWorkloadProgram(C, Diags);
    std::unique_ptr<AnalysisSession> S;
    if (P)
      S = AnalysisSession::adopt(std::move(P), {}, Diags);
    if (!S) {
      for (const std::string &D : Diags)
        std::fprintf(stderr, "%s\n", D.c_str());
      return 1;
    }
    uint32_t Stmts = S->program().numStmts();
    J.custom(C.Name, "program",
             {{"stmts", static_cast<double>(Stmts)},
              {"vars", static_cast<double>(S->program().numVars())}});
    std::printf("%-10s %8u", C.Name.c_str(), Stmts);
    for (const std::string &Spec : Specs) {
      AnalysisRun O = runWithBudget(*S, Spec, /*DoopMode=*/false);
      J.record(C.Name, O);
      std::printf(" %12s", fmtTime(O).c_str());
      if (Tier == 0 && !O.completed())
        SmokeFailed = true;
    }
    std::printf("\n");
    ++Tier;
  }

  if (!J.write())
    return 1;
  if (SmokeFailed) {
    std::fprintf(stderr,
                 "error: smoke tier exhausted its budget (BudgetExhausted "
                 "on the smallest workload)\n");
    return 3;
  }
  return 0;
}
